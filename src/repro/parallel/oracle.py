"""The animation cost oracle: measured per-pixel work for strategy replay.

The cluster simulator must charge each render task its true cost.  Because a
pixel's ray tree is an intrinsic property of (scene, pixel) — independent of
which processor renders it or which other pixels render alongside — one
instrumented analysis of the animation yields everything any partitioning
strategy can ask:

* ``full_cost[f, p]`` — rays fired to render pixel ``p`` of frame ``f`` from
  scratch;
* ``dirty[f]`` — the frame-coherence recompute set for the transition
  ``f-1 -> f`` (well-defined independent of where a coherence chain started,
  because an un-recomputed pixel's ray paths — and hence its voxel marks —
  are unchanged).

A strategy replay then reads: a chain start at frame ``k`` over region ``R``
costs ``full_cost[k, R].sum()``; each subsequent frame costs
``full_cost[f, dirty[f] & R].sum()``.  Ray counts per strategy (Table 1's
first row) fall out of the same arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..coherence import CoherentRenderer, grid_for_animation
from ..geometry import RayKind
from ..render import RayTracer
from ..scene import Animation

__all__ = ["AnimationCostOracle", "build_oracle"]


@dataclass
class AnimationCostOracle:
    """Measured per-pixel, per-frame rendering costs of one animation."""

    width: int
    height: int
    n_frames: int
    full_cost: np.ndarray  # (n_frames, n_pixels) int32, rays per pixel
    dirty_sets: list[np.ndarray]  # dirty_sets[0] is empty; [f] = recompute set for f>=1
    grid_resolution: int
    #: Optional (n_frames, n_kinds) whole-frame ray counts by RayKind from the
    #: full pass.  Region subsets split a frame's total proportionally by the
    #: frame's kind mix — a modeled estimate, enough for comparable telemetry.
    full_kind_counts: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.full_cost = np.asarray(self.full_cost, dtype=np.int32)
        if self.full_cost.shape != (self.n_frames, self.n_pixels):
            raise ValueError("full_cost shape mismatch")
        if len(self.dirty_sets) != self.n_frames:
            raise ValueError("need one dirty set per frame")
        if self.full_kind_counts is not None:
            self.full_kind_counts = np.asarray(self.full_kind_counts, dtype=np.int64)
            if self.full_kind_counts.ndim != 2 or self.full_kind_counts.shape[0] != self.n_frames:
                raise ValueError("full_kind_counts shape mismatch")

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    # -- cost queries -----------------------------------------------------
    def full_rays(self, frame: int, region: np.ndarray | None = None) -> int:
        """Rays to render ``region`` (default: whole frame) of ``frame`` from scratch."""
        row = self.full_cost[frame]
        return int(row.sum()) if region is None else int(row[region].sum())

    def dirty_pixels(self, frame: int, region: np.ndarray | None = None) -> np.ndarray:
        """Recompute set of ``frame`` (transition f-1 -> f), clipped to ``region``."""
        if frame == 0:
            raise ValueError("frame 0 has no predecessor; it is a chain start")
        d = self.dirty_sets[frame]
        if region is None:
            return d
        return d[np.isin(d, region, assume_unique=True)]

    def coherent_rays(self, frame: int, region: np.ndarray | None = None) -> tuple[int, int]:
        """(rays, pixels_computed) for a coherent step onto ``frame``."""
        d = self.dirty_pixels(frame, region)
        return int(self.full_cost[frame][d].sum()), int(d.size)

    def chain_rays(self, start: int, stop: int, region: np.ndarray | None = None) -> int:
        """Total rays of a coherence chain over frames ``[start, stop)``."""
        total = self.full_rays(start, region)
        for f in range(start + 1, stop):
            total += self.coherent_rays(f, region)[0]
        return total

    def total_full_rays(self) -> int:
        """Rays when every frame is rendered from scratch (no coherence)."""
        return int(self.full_cost.sum())

    def total_coherent_rays(self) -> int:
        """Rays of a single full-frame coherence chain over the animation."""
        return self.chain_rays(0, self.n_frames)

    def kind_counts(self, frame: int, rays: int | None = None) -> np.ndarray | None:
        """By-kind ray counts for ``frame``, or ``None`` for old oracles.

        With ``rays`` given (a region/coherent subtotal), the frame's total
        is rescaled to that many rays while keeping the frame's kind mix —
        the proportional-split estimate used by the simulators' telemetry.
        """
        if self.full_kind_counts is None:
            return None
        row = self.full_kind_counts[frame]
        if rays is None:
            return row.copy()
        total = int(row.sum())
        if total <= 0 or rays <= 0:
            return np.zeros_like(row)
        scaled = np.floor(row * (rays / total)).astype(np.int64)
        # Put the rounding remainder on camera rays so the total is exact.
        scaled[0] += rays - int(scaled.sum())
        return scaled

    def mean_dirty_fraction(self) -> float:
        if self.n_frames < 2:
            return 0.0
        return float(
            np.mean([self.dirty_sets[f].size / self.n_pixels for f in range(1, self.n_frames)])
        )

    # -- persistence ---------------------------------------------------------
    def save(self, path: str | Path) -> None:
        extra = {}
        if self.full_kind_counts is not None:
            extra["full_kind_counts"] = self.full_kind_counts
        np.savez_compressed(
            path,
            width=self.width,
            height=self.height,
            n_frames=self.n_frames,
            full_cost=self.full_cost,
            grid_resolution=self.grid_resolution,
            **extra,
            **{f"dirty_{f}": self.dirty_sets[f] for f in range(self.n_frames)},
        )

    @staticmethod
    def load(path: str | Path) -> "AnimationCostOracle":
        with np.load(path) as z:
            n_frames = int(z["n_frames"])
            return AnimationCostOracle(
                width=int(z["width"]),
                height=int(z["height"]),
                n_frames=n_frames,
                full_cost=z["full_cost"],
                dirty_sets=[z[f"dirty_{f}"].astype(np.int64) for f in range(n_frames)],
                grid_resolution=int(z["grid_resolution"]),
                full_kind_counts=z["full_kind_counts"] if "full_kind_counts" in z else None,
            )


def build_oracle(
    animation: Animation,
    grid_resolution: int = 24,
    chunk_size: int = 32768,
    verbose: bool = False,
) -> AnimationCostOracle:
    """Instrument the animation: one coherent pass + one full pass per frame."""
    cam = animation.camera_at(0)
    n_pixels = cam.n_pixels
    full_cost = np.zeros((animation.n_frames, n_pixels), dtype=np.int32)
    full_kind_counts = np.zeros((animation.n_frames, len(RayKind)), dtype=np.int64)

    grid = grid_for_animation(animation, grid_resolution)
    coherent = CoherentRenderer(animation, grid=grid, chunk_size=chunk_size)
    dirty_sets: list[np.ndarray] = [np.empty(0, dtype=np.int64)]

    for f in range(animation.n_frames):
        report = coherent.render_next()
        if f > 0:
            dirty_sets.append(report.computed_pixels)
        # Full per-pixel cost (no path tracking needed).
        scene = animation.scene_at(f)
        tracer = RayTracer(scene, chunk_size=chunk_size)
        result = tracer.trace_pixels(cam.pixel_grid())
        full_cost[f] = result.rays_per_pixel
        full_kind_counts[f] = result.stats.counts
        if verbose:  # pragma: no cover - console aid
            print(
                f"oracle frame {f}: dirty={report.n_computed} "
                f"full_rays={int(full_cost[f].sum())}"
            )

    res = grid_resolution if isinstance(grid_resolution, int) else int(np.max(grid_resolution))
    return AnimationCostOracle(
        width=cam.width,
        height=cam.height,
        n_frames=animation.n_frames,
        full_cost=full_cost,
        dirty_sets=dirty_sets,
        grid_resolution=res,
        full_kind_counts=full_kind_counts,
    )
