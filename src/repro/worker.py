"""``python -m repro.worker`` — run a rendering worker daemon.

Thin runnable shim over :mod:`repro.net.worker` so a workstation joins
the farm with one command and no knowledge of the package layout::

    python -m repro.worker --connect master-host:7421

(Equivalent to ``repro worker --connect ...``.)
"""

from .net.worker import WorkerClient, calibrate, main

__all__ = ["WorkerClient", "calibrate", "main"]

if __name__ == "__main__":
    raise SystemExit(main())
