"""Scene layer: camera, scene container, animation and the scene language."""

from .animation import Animation, FunctionAnimation, StaticAnimation, split_coherent_sequences
from .camera import Camera
from .scene import Scene
from .sdl import SceneParseError, load_scene, parse_scene

__all__ = [
    "Animation",
    "Camera",
    "FunctionAnimation",
    "Scene",
    "SceneParseError",
    "StaticAnimation",
    "load_scene",
    "parse_scene",
    "split_coherent_sequences",
]
