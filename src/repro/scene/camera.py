"""Pinhole camera.

The camera generates primary ("camera") rays for *arbitrary subsets of
pixels*, addressed by flat framebuffer index.  That interface is what the
frame-coherence renderer needs: after the first frame only the dirty pixels
are re-shot, and what the frame-division partitioner needs: a worker shoots
only its 80x80 block.

Pixel convention: row-major, origin at the top-left, pixel centers at
``(x + 0.5, y + 0.5)``.  The paper's workload is 320x240 ("76,800 independent
calculations ... one for each pixel").
"""

from __future__ import annotations

import numpy as np

from ..geometry import RayBatch, RayKind
from ..rmath import cross, normalize

__all__ = ["Camera"]


class Camera:
    """A look-at pinhole camera.

    Parameters
    ----------
    position, look_at:
        Eye point and target point.
    up:
        Approximate up vector (re-orthogonalized).
    fov_degrees:
        Horizontal field of view.
    width, height:
        Image resolution in pixels.
    """

    def __init__(
        self,
        position,
        look_at,
        up=(0.0, 1.0, 0.0),
        fov_degrees: float = 60.0,
        width: int = 320,
        height: int = 240,
    ):
        if width <= 0 or height <= 0:
            raise ValueError("image dimensions must be positive")
        if not (0.0 < fov_degrees < 180.0):
            raise ValueError("fov must be in (0, 180) degrees")
        self.position = np.asarray(position, dtype=np.float64).reshape(3)
        self.look_at = np.asarray(look_at, dtype=np.float64).reshape(3)
        self.width = int(width)
        self.height = int(height)
        self.fov_degrees = float(fov_degrees)

        forward = self.look_at - self.position
        if np.linalg.norm(forward) == 0:
            raise ValueError("camera position and look_at coincide")
        self._w = normalize(forward)
        up = np.asarray(up, dtype=np.float64).reshape(3)
        right = cross(self._w, up)
        if np.linalg.norm(right) == 0:
            raise ValueError("up vector is parallel to the view direction")
        self._u = normalize(right)
        self._v = cross(self._u, self._w)

        half_width = np.tan(np.radians(self.fov_degrees) / 2.0)
        self._half_w = half_width
        self._half_h = half_width * self.height / self.width

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    def pixel_grid(self) -> np.ndarray:
        """All flat pixel indices, row-major."""
        return np.arange(self.n_pixels, dtype=np.int64)

    def rays_for_pixels(self, pixel_ids: np.ndarray, jitter: np.ndarray | None = None) -> RayBatch:
        """Camera rays through the centers of the given flat pixel indices.

        ``jitter``, when given, is an ``(N, 2)`` array of sub-pixel offsets in
        ``[-0.5, 0.5)`` used by the supersampler.
        """
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64).ravel()
        if pixel_ids.size and (pixel_ids.min() < 0 or pixel_ids.max() >= self.n_pixels):
            raise ValueError("pixel index out of range")
        px = (pixel_ids % self.width).astype(np.float64) + 0.5
        py = (pixel_ids // self.width).astype(np.float64) + 0.5
        if jitter is not None:
            jitter = np.asarray(jitter, dtype=np.float64)
            px = px + jitter[:, 0]
            py = py + jitter[:, 1]
        # NDC in [-1, 1], y flipped so +v is up in the image.
        sx = (px / self.width) * 2.0 - 1.0
        sy = 1.0 - (py / self.height) * 2.0
        dirs = (
            self._w
            + sx[:, None] * (self._half_w * self._u)
            + sy[:, None] * (self._half_h * self._v)
        )
        origins = np.broadcast_to(self.position, (pixel_ids.size, 3)).copy()
        weights = np.ones((pixel_ids.size, 3), dtype=np.float64)
        return RayBatch.normalized(
            origins, dirs, pixel_ids, weights, kind=RayKind.CAMERA, depth=0
        )

    def all_rays(self) -> RayBatch:
        """Camera rays for the full frame."""
        return self.rays_for_pixels(self.pixel_grid())

    def with_resolution(self, width: int, height: int) -> "Camera":
        """Same viewpoint at a different resolution (used by benchmarks)."""
        return Camera(
            self.position,
            self.look_at,
            up=self._v,
            fov_degrees=self.fov_degrees,
            width=width,
            height=height,
        )
