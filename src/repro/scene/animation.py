"""Animation: a sequence of scenes with object identity across frames.

The coherence engine needs two things from an animation:

1. ``scene_at(frame)`` — a full scene for any frame, with primitives that
   keep their ``prim_id`` across frames so motion can be attributed to
   objects.
2. The *stationary camera* property within a coherent sequence.  The paper's
   algorithm "works only for sequences in which the camera is stationary, any
   camera movement logically separates one sequence from another";
   :func:`split_coherent_sequences` implements exactly that segmentation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Mapping

import numpy as np

from ..geometry import Primitive
from ..rmath import Transform
from .camera import Camera
from .scene import Scene

__all__ = ["Animation", "FunctionAnimation", "StaticAnimation", "split_coherent_sequences"]


class Animation(ABC):
    """A finite sequence of frames over a scene."""

    def __init__(self, n_frames: int):
        if n_frames < 1:
            raise ValueError("animation needs at least one frame")
        self.n_frames = int(n_frames)

    @abstractmethod
    def scene_at(self, frame: int) -> Scene:
        """The scene for ``frame`` (0-based)."""

    def _check_frame(self, frame: int) -> int:
        frame = int(frame)
        if not (0 <= frame < self.n_frames):
            raise IndexError(f"frame {frame} out of range [0, {self.n_frames})")
        return frame

    def camera_at(self, frame: int) -> Camera:
        return self.scene_at(frame).camera

    def frames(self):
        """Iterate ``(frame_index, scene)`` pairs."""
        for f in range(self.n_frames):
            yield f, self.scene_at(f)


class StaticAnimation(Animation):
    """The same scene for every frame (useful as a control in benchmarks)."""

    def __init__(self, scene: Scene, n_frames: int):
        super().__init__(n_frames)
        self._scene = scene

    def scene_at(self, frame: int) -> Scene:
        self._check_frame(frame)
        return self._scene


class FunctionAnimation(Animation):
    """A base scene animated by per-object motion functions.

    Parameters
    ----------
    base_scene:
        Scene at rest.  Objects referenced by the motions must be in it.
    n_frames:
        Sequence length.
    motions:
        Maps an object's *name* to ``frame -> Transform``; the returned
        transform is applied **after** the object's rest placement (i.e. it
        moves the already-placed object in world space).  Objects without a
        motion entry are static.
    camera_fn:
        Optional ``frame -> Camera``.  When provided the camera may move,
        which breaks frame coherence at the frames where it changes (see
        :func:`split_coherent_sequences`).
    """

    def __init__(
        self,
        base_scene: Scene,
        n_frames: int,
        motions: Mapping[str, Callable[[int], Transform]] | None = None,
        camera_fn: Callable[[int], Camera] | None = None,
    ):
        super().__init__(n_frames)
        self.base_scene = base_scene
        self.motions = dict(motions or {})
        self.camera_fn = camera_fn
        names = {o.name for o in base_scene.objects}
        missing = set(self.motions) - names
        if missing:
            raise KeyError(f"motions reference unknown objects: {sorted(missing)}")

    def scene_at(self, frame: int) -> Scene:
        frame = self._check_frame(frame)
        objects: list[Primitive] = []
        for obj in self.base_scene.objects:
            fn = self.motions.get(obj.name)
            objects.append(obj if fn is None else obj.moved_by(fn(frame)))
        scene = self.base_scene.replaced_objects(objects)
        if self.camera_fn is not None:
            scene.camera = self.camera_fn(frame)
        return scene


def _cameras_equal(a: Camera, b: Camera) -> bool:
    return (
        a.width == b.width
        and a.height == b.height
        and a.fov_degrees == b.fov_degrees
        and np.allclose(a.position, b.position)
        and np.allclose(a.look_at, b.look_at)
    )


def split_coherent_sequences(animation: Animation) -> list[tuple[int, int]]:
    """Split an animation into maximal stationary-camera runs.

    Returns half-open frame ranges ``[(start, stop), ...]`` covering the
    animation.  Within each range the camera is constant, so the frame
    coherence algorithm applies; camera cuts start a new range, exactly as
    the paper prescribes.
    """
    ranges: list[tuple[int, int]] = []
    start = 0
    prev_cam = animation.camera_at(0)
    for f in range(1, animation.n_frames):
        cam = animation.camera_at(f)
        if not _cameras_equal(prev_cam, cam):
            ranges.append((start, f))
            start = f
        prev_cam = cam
    ranges.append((start, animation.n_frames))
    return ranges
