"""Scene container: camera + primitives + lights + global settings."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import Primitive
from ..lighting import PointLight
from ..rmath import AABB, union, vec3
from .camera import Camera

__all__ = ["Scene"]


@dataclass
class Scene:
    """Everything needed to render one frame.

    Attributes
    ----------
    camera:
        The (stationary, within a coherent sequence) camera.
    objects:
        Primitives; order is stable and object identity across frames is
        tracked by ``Primitive.prim_id``.
    lights:
        Point light sources.
    background:
        RGB color returned by rays that escape the scene.
    ambient_light:
        Global ambient RGB multiplied by each finish's ``ambient``.
    max_depth:
        Recursion limit for reflected/refracted rays (the paper uses 5).
    """

    camera: Camera
    objects: list[Primitive] = field(default_factory=list)
    lights: list[PointLight] = field(default_factory=list)
    background: np.ndarray = field(default_factory=lambda: vec3(0.0, 0.0, 0.0))
    ambient_light: np.ndarray = field(default_factory=lambda: vec3(1.0, 1.0, 1.0))
    max_depth: int = 5

    def __post_init__(self) -> None:
        self.background = np.asarray(self.background, dtype=np.float64).reshape(3)
        self.ambient_light = np.asarray(self.ambient_light, dtype=np.float64).reshape(3)
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        ids = [o.prim_id for o in self.objects]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate prim_id in scene (did you add the same object twice?)")

    def add(self, *objects: Primitive) -> "Scene":
        self.objects.extend(objects)
        return self

    def add_light(self, *lights: PointLight) -> "Scene":
        self.lights.extend(lights)
        return self

    def object_by_name(self, name: str) -> Primitive:
        for o in self.objects:
            if o.name == name:
                return o
        raise KeyError(name)

    def finite_bounds(self) -> AABB:
        """Union of the finite object bounds (infinite primitives skipped)."""
        box = AABB.empty()
        for o in self.objects:
            b = o.bounds()
            if np.all(np.isfinite(b.lo)) and np.all(np.isfinite(b.hi)):
                box = union(box, b)
        return box

    def world_bounds(self, margin_frac: float = 0.05) -> AABB:
        """Voxelizable region: the finite objects, padded.

        Deliberately excludes the camera and lights: any ray whose result
        can be affected by an object lying in (or moving into) a voxel must
        traverse that voxel, so the grid only needs to cover *object* space.
        Keeping it tight makes voxels small and coherence predictions sharp.
        Infinite primitives (planes) are clipped to this region when the
        uniform grid is built, matching how POV-style grids handle planes.
        """
        box = self.finite_bounds()
        if box.is_empty():
            pts = [self.camera.position] + [light.position for light in self.lights]
            box = AABB.from_points(np.asarray(pts))
        if box.is_empty():
            return AABB(vec3(-1, -1, -1), vec3(1, 1, 1))
        diag = float(np.linalg.norm(box.extent))
        pad = max(diag * margin_frac, 1e-6)
        return box.expanded(pad)

    def replaced_objects(self, objects: list[Primitive]) -> "Scene":
        """A sibling scene with the same settings but different objects."""
        return Scene(
            camera=self.camera,
            objects=list(objects),
            lights=list(self.lights),
            background=self.background.copy(),
            ambient_light=self.ambient_light.copy(),
            max_depth=self.max_depth,
        )
