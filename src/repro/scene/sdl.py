"""A POV-Ray-flavoured scene description language.

The paper's renderer is an extension of POV-Ray 3.0, whose scenes are plain
text files; the PVM slaves each re-parse the scene locally.  This module
provides a compact POV-like dialect covering everything the reproduction's
primitives and materials support, so example scenes can live in files:

::

    camera { location <0, 2, -7>  look_at <0, 1.8, 0>  angle 55  width 320 height 240 }
    background { rgb <0.05, 0.06, 0.1> }
    light_source { <0, 4.5, -3>  rgb <0.95, 0.95, 0.9> }

    plane { <0, 1, 0>, 0
        texture { pigment { checker rgb <1,1,1> rgb <0.1,0.1,0.1> }
                  finish { diffuse 0.8 reflection 0.05 } } }

    sphere { <0, 1, 0>, 0.7  name "ball"
        texture { pigment { rgb <0.9, 0.97, 0.9> }
                  finish { transmission 0.85 ior 1.5 specular 0.9 } } }

Grammar (informal): a scene is a sequence of top-level blocks —
``camera``, ``background``, ``global_settings``, ``light_source``,
``sphere``, ``plane``, ``cylinder``, ``box``, ``disc``.  Vectors are
``<x, y, z>``; commas are optional separators; ``//`` and ``#`` start
line comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..geometry import (
    Box,
    CSGDifference,
    CSGIntersection,
    Cylinder,
    Disc,
    Plane,
    Sphere,
    Torus,
)
from ..lighting import PointLight
from ..materials import Agate, Brick, Checker, Finish, Gradient, Marble, Material, SolidColor
from ..rmath import Transform, vec3
from .camera import Camera
from .scene import Scene

__all__ = ["parse_scene", "load_scene", "SceneParseError"]


class SceneParseError(ValueError):
    """Raised with a line number when the scene text is malformed."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|\#(?!declare\b)[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)
  | (?P<ident>\#?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct><|>|\{|\}|,|=)
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


@dataclass
class _Token:
    kind: str
    value: str
    line: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    for m in _TOKEN_RE.finditer(text):
        kind = m.lastgroup
        val = m.group()
        if kind in ("ws", "comment"):
            line += val.count("\n")
            continue
        if kind == "bad":
            raise SceneParseError(f"unexpected character {val!r}", line)
        tokens.append(_Token(kind, val, line))
        line += val.count("\n")
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.pos = 0
        # ``#declare`` environments, by kind.
        self.declared_colors: dict[str, np.ndarray] = {}
        self.declared_textures: dict[str, Material] = {}
        self.declared_finishes: dict[str, Finish] = {}

    # -- primitives of parsing -------------------------------------------
    def _peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _line(self) -> int:
        t = self._peek()
        return t.line if t else (self.tokens[-1].line if self.tokens else 1)

    def _next(self) -> _Token:
        t = self._peek()
        if t is None:
            raise SceneParseError("unexpected end of input", self._line())
        self.pos += 1
        return t

    def _expect(self, value: str) -> _Token:
        t = self._next()
        if t.value != value:
            raise SceneParseError(f"expected {value!r}, got {t.value!r}", t.line)
        return t

    def _maybe(self, value: str) -> bool:
        t = self._peek()
        if t is not None and t.value == value:
            self.pos += 1
            return True
        return False

    def _skip_commas(self) -> None:
        while self._maybe(","):
            pass

    def number(self) -> float:
        t = self._next()
        if t.kind != "number":
            raise SceneParseError(f"expected a number, got {t.value!r}", t.line)
        return float(t.value)

    def vector(self) -> np.ndarray:
        self._expect("<")
        x = self.number()
        self._skip_commas()
        y = self.number()
        self._skip_commas()
        z = self.number()
        self._expect(">")
        return vec3(x, y, z)

    def string(self) -> str:
        t = self._next()
        if t.kind != "string":
            raise SceneParseError(f"expected a string, got {t.value!r}", t.line)
        return t.value[1:-1].replace('\\"', '"')

    # -- color / pigment / finish / texture ---------------------------------
    def color(self) -> np.ndarray:
        # accepts: rgb <r,g,b>, bare <r,g,b>, or a #declared color name
        t = self._peek()
        if t is not None and t.value == "rgb":
            self._next()
            t = self._peek()
        if t is not None and t.kind == "ident":
            if t.value in self.declared_colors:
                self._next()
                return self.declared_colors[t.value].copy()
            raise SceneParseError(f"unknown color name {t.value!r}", t.line)
        return self.vector()

    def pigment(self):
        self._expect("{")
        t = self._peek()
        if t is None:
            raise SceneParseError("unterminated pigment", self._line())
        if t.value in ("rgb", "<"):
            tex = SolidColor(self.color())
        elif t.value == "checker":
            self._next()
            a = self.color()
            self._skip_commas()
            b = self.color()
            tex = Checker(a, b)
        elif t.value == "brick":
            self._next()
            kwargs = {}
            while self._peek() and self._peek().value != "}" and self._peek().value != "scale":
                key = self._next()
                if key.value == "color":
                    kwargs["brick_color"] = self.color()
                elif key.value == "mortar":
                    kwargs["mortar_color"] = self.color()
                elif key.value == "size":
                    kwargs["brick_size"] = tuple(self.vector())
                elif key.value == "thickness":
                    kwargs["mortar"] = self.number()
                else:
                    raise SceneParseError(f"unknown brick attribute {key.value!r}", key.line)
            tex = Brick(**kwargs)
        elif t.value == "marble":
            self._next()
            a = self.color()
            self._skip_commas()
            b = self.color()
            tex = Marble(a, b)
        elif t.value == "agate":
            self._next()
            a = self.color()
            self._skip_commas()
            b = self.color()
            tex = Agate(a, b)
        elif t.value == "gradient":
            self._next()
            axis = self.vector()
            a = self.color()
            self._skip_commas()
            b = self.color()
            tex = Gradient(axis, a, b)
        else:
            raise SceneParseError(f"unknown pigment type {t.value!r}", t.line)
        if self._peek() and self._peek().value == "scale":
            self._next()
            tex = tex.scaled(self.number())
        self._expect("}")
        return tex

    def finish(self) -> Finish:
        self._expect("{")
        kwargs: dict[str, float] = {}
        mapping = {
            "ambient": "ambient",
            "diffuse": "diffuse",
            "specular": "specular",
            "phong_size": "phong_size",
            "reflection": "reflection",
            "transmission": "transmission",
            "ior": "ior",
        }
        while not self._maybe("}"):
            t = self._next()
            if t.value not in mapping:
                raise SceneParseError(f"unknown finish attribute {t.value!r}", t.line)
            kwargs[mapping[t.value]] = self.number()
        return Finish(**kwargs)

    def texture(self) -> Material:
        # Either a reference to a #declared texture ("texture Name" or
        # "texture { Name }") or an inline definition.
        t = self._peek()
        if t is not None and t.kind == "ident" and t.value in self.declared_textures:
            self._next()
            return self.declared_textures[t.value]
        self._expect("{")
        t = self._peek()
        if t is not None and t.kind == "ident" and t.value in self.declared_textures:
            self._next()
            self._expect("}")
            return self.declared_textures[t.value]
        pigment = None
        finish = None
        while not self._maybe("}"):
            t = self._next()
            if t.value == "pigment":
                pigment = self.pigment()
            elif t.value == "finish":
                nxt = self._peek()
                if nxt is not None and nxt.kind == "ident" and nxt.value in self.declared_finishes:
                    self._next()
                    finish = self.declared_finishes[nxt.value]
                else:
                    finish = self.finish()
            else:
                raise SceneParseError(f"unknown texture element {t.value!r}", t.line)
        return Material(
            pigment=pigment if pigment is not None else SolidColor((1.0, 1.0, 1.0)),
            finish=finish if finish is not None else Finish(),
        )

    # -- object trailer: texture / name / transform clauses -----------------
    def object_trailer(self) -> tuple[Material | None, str | None, Transform | None]:
        material = None
        name = None
        transform = None
        while True:
            t = self._peek()
            if t is None:
                raise SceneParseError("unterminated object", self._line())
            if t.value == "}":
                self._next()
                return material, name, transform
            if t.value == "texture":
                self._next()
                material = self.texture()
            elif t.value == "name":
                self._next()
                name = self.string()
            elif t.value == "translate":
                self._next()
                v = self.vector()
                extra = Transform.translate(*v)
                transform = extra if transform is None else extra @ transform
            elif t.value == "rotate_y":
                self._next()
                extra = Transform.rotate_y(np.radians(self.number()))
                transform = extra if transform is None else extra @ transform
            elif t.value == "rotate":
                # POV convention: degrees applied about x, then y, then z.
                self._next()
                rx, ry, rz = np.radians(self.vector())
                extra = (
                    Transform.rotate_z(rz)
                    @ Transform.rotate_y(ry)
                    @ Transform.rotate_x(rx)
                )
                transform = extra if transform is None else extra @ transform
            elif t.value == "scale":
                self._next()
                nxt = self._peek()
                if nxt is not None and nxt.value == "<":
                    sx, sy, sz = self.vector()
                    extra = Transform.scale(sx, sy, sz)
                else:
                    extra = Transform.scale(self.number())
                transform = extra if transform is None else extra @ transform
            elif t.value == ",":
                self._next()
            else:
                raise SceneParseError(f"unexpected token {t.value!r} in object", t.line)

    # -- CSG ----------------------------------------------------------------
    def csg_operand(self) -> "Primitive":
        """One convex operand inside intersection/difference: the geometric
        body only (per-operand textures are not supported; the node's
        texture applies to the whole solid, as in this dialect)."""
        t = self._next()
        if t.value == "sphere":
            self._expect("{")
            center = self.vector()
            self._skip_commas()
            radius = self.number()
            _, _, extra = self.object_trailer()
            obj = Sphere.at(center, radius)
        elif t.value == "box":
            self._expect("{")
            lo = self.vector()
            self._skip_commas()
            hi = self.vector()
            _, _, extra = self.object_trailer()
            obj = Box.from_corners(lo, hi)
        elif t.value == "cylinder":
            self._expect("{")
            p0 = self.vector()
            self._skip_commas()
            p1 = self.vector()
            self._skip_commas()
            r = self.number()
            _, _, extra = self.object_trailer()
            obj = Cylinder.from_endpoints(p0, p1, r)
        elif t.value == "intersection":
            obj, extra = self.csg_intersection_body()
        else:
            raise SceneParseError(
                f"CSG operands must be sphere/box/cylinder/intersection, got {t.value!r}",
                t.line,
            )
        return obj if extra is None else obj.moved_by(extra)

    def csg_intersection_body(self):
        """Parse ``{ operand operand ... [trailer] }`` after 'intersection'."""
        self._expect("{")
        children = []
        while True:
            t = self._peek()
            if t is None:
                raise SceneParseError("unterminated intersection", self._line())
            if t.value in ("sphere", "box", "cylinder", "intersection"):
                children.append(self.csg_operand())
            else:
                break
        mat, name, extra = self.object_trailer()
        node = CSGIntersection(children, material=mat)
        if name is not None:
            node.name = name
        return node, extra

    # -- top-level blocks ---------------------------------------------------
    def parse(self) -> Scene:
        camera = None
        objects = []
        lights = []
        background = vec3(0.0, 0.0, 0.0)
        ambient = vec3(1.0, 1.0, 1.0)
        max_depth = 5
        default_mat = Material.matte((0.8, 0.8, 0.8))

        while self._peek() is not None:
            t = self._next()
            if t.kind != "ident":
                raise SceneParseError(f"expected a block name, got {t.value!r}", t.line)
            if t.value == "camera":
                camera = self._camera_block()
            elif t.value == "background":
                self._expect("{")
                background = self.color()
                self._expect("}")
            elif t.value == "global_settings":
                self._expect("{")
                while not self._maybe("}"):
                    k = self._next()
                    if k.value == "ambient_light":
                        ambient = self.color()
                    elif k.value == "max_trace_level":
                        max_depth = int(self.number())
                    else:
                        raise SceneParseError(f"unknown global setting {k.value!r}", k.line)
            elif t.value == "light_source":
                self._expect("{")
                pos = self.vector()
                self._skip_commas()
                col = self.color()
                extras: dict[str, float] = {}
                while not self._maybe("}"):
                    k = self._next()
                    if k.value in ("radius", "fade_distance", "fade_power"):
                        extras[k.value] = self.number()
                    elif k.value == "samples":
                        extras["n_samples"] = int(self.number())
                    elif k.value == ",":
                        continue
                    else:
                        raise SceneParseError(
                            f"unknown light attribute {k.value!r}", k.line
                        )
                lights.append(PointLight(pos, col, **extras))
            elif t.value == "#declare":
                name_tok = self._next()
                if name_tok.kind != "ident" or name_tok.value.startswith("#"):
                    raise SceneParseError("expected a name after #declare", name_tok.line)
                self._expect("=")
                what = self._peek()
                if what is None:
                    raise SceneParseError("unterminated #declare", name_tok.line)
                if what.value == "texture":
                    self._next()
                    self.declared_textures[name_tok.value] = self.texture()
                elif what.value == "finish":
                    self._next()
                    self.declared_finishes[name_tok.value] = self.finish()
                elif what.value in ("rgb", "color", "<"):
                    if what.value == "color":
                        self._next()
                    self.declared_colors[name_tok.value] = self.color()
                else:
                    raise SceneParseError(
                        f"#declare supports texture/finish/color, not {what.value!r}",
                        what.line,
                    )
            elif t.value == "sphere":
                self._expect("{")
                center = self.vector()
                self._skip_commas()
                radius = self.number()
                mat, name, extra = self.object_trailer()
                obj = Sphere.at(center, radius, material=mat or default_mat, name=name)
                objects.append(obj if extra is None else obj.moved_by(extra))
            elif t.value == "plane":
                self._expect("{")
                normal = self.vector()
                self._skip_commas()
                d = self.number()
                mat, name, extra = self.object_trailer()
                obj = Plane.from_normal(normal, d, material=mat or default_mat, name=name)
                objects.append(obj if extra is None else obj.moved_by(extra))
            elif t.value == "cylinder":
                self._expect("{")
                p0 = self.vector()
                self._skip_commas()
                p1 = self.vector()
                self._skip_commas()
                r = self.number()
                mat, name, extra = self.object_trailer()
                obj = Cylinder.from_endpoints(p0, p1, r, material=mat or default_mat, name=name)
                objects.append(obj if extra is None else obj.moved_by(extra))
            elif t.value == "box":
                self._expect("{")
                lo = self.vector()
                self._skip_commas()
                hi = self.vector()
                mat, name, extra = self.object_trailer()
                obj = Box.from_corners(lo, hi, material=mat or default_mat, name=name)
                objects.append(obj if extra is None else obj.moved_by(extra))
            elif t.value == "disc":
                self._expect("{")
                center = self.vector()
                self._skip_commas()
                normal = self.vector()
                self._skip_commas()
                r = self.number()
                mat, name, extra = self.object_trailer()
                obj = Disc.at(center, normal, r, material=mat or default_mat, name=name)
                objects.append(obj if extra is None else obj.moved_by(extra))
            elif t.value == "torus":
                self._expect("{")
                major = self.number()
                self._skip_commas()
                minor = self.number()
                mat, name, extra = self.object_trailer()
                obj = Torus.at(
                    (0.0, 0.0, 0.0), (0.0, 1.0, 0.0), major, minor,
                    material=mat or default_mat, name=name,
                )
                objects.append(obj if extra is None else obj.moved_by(extra))
            elif t.value == "intersection":
                node, extra = self.csg_intersection_body()
                if node.material is None:
                    node.material = default_mat
                objects.append(node if extra is None else node.moved_by(extra))
            elif t.value == "difference":
                self._expect("{")
                minuend = self.csg_operand()
                subtrahend = self.csg_operand()
                mat, name, extra = self.object_trailer()
                node = CSGDifference(minuend, subtrahend, material=mat or default_mat)
                if name is not None:
                    node.name = name
                objects.append(node if extra is None else node.moved_by(extra))
            else:
                raise SceneParseError(f"unknown block {t.value!r}", t.line)

        if camera is None:
            raise SceneParseError("scene has no camera block", self._line())
        return Scene(
            camera=camera,
            objects=objects,
            lights=lights,
            background=background,
            ambient_light=ambient,
            max_depth=max_depth,
        )

    def _camera_block(self) -> Camera:
        self._expect("{")
        kwargs: dict[str, object] = {}
        while not self._maybe("}"):
            t = self._next()
            if t.value == "location":
                kwargs["position"] = self.vector()
            elif t.value == "look_at":
                kwargs["look_at"] = self.vector()
            elif t.value == "up":
                kwargs["up"] = self.vector()
            elif t.value == "angle":
                kwargs["fov_degrees"] = self.number()
            elif t.value == "width":
                kwargs["width"] = int(self.number())
            elif t.value == "height":
                kwargs["height"] = int(self.number())
            else:
                raise SceneParseError(f"unknown camera attribute {t.value!r}", t.line)
        if "position" not in kwargs or "look_at" not in kwargs:
            raise SceneParseError("camera needs location and look_at", self._line())
        return Camera(**kwargs)


def parse_scene(text: str) -> Scene:
    """Parse scene-description text into a :class:`Scene`."""
    return _Parser(_tokenize(text)).parse()


def load_scene(path: str | Path) -> Scene:
    """Parse a scene file."""
    return parse_scene(Path(path).read_text())
