"""Spatial acceleration: uniform grid and 3-D DDA traversal."""

from .dda import traverse
from .grid import UniformGrid

__all__ = ["UniformGrid", "traverse"]
