"""Vectorized 3-D DDA (Amanatides & Woo) grid traversal.

This is the paper's "modified 3-D DDA algorithm" that determines which
voxels every ray traverses.  The modification relevant to frame coherence is
that traversal is *clipped at the ray's hit distance*: a ray that stops at a
surface only marks the voxels between its origin and that surface, so pixel
lists stay tight.

The implementation advances an entire batch of rays in lockstep: each loop
iteration performs one DDA step for every still-active ray using pure numpy
ops, so the Python-level iteration count is bounded by the longest single
traversal (≈ nx+ny+nz steps), not by the number of rays.
"""

from __future__ import annotations

import numpy as np

from ..rmath import ray_aabb_intersect
from .grid import UniformGrid

__all__ = ["traverse"]


def traverse(
    grid: UniformGrid,
    origins: np.ndarray,
    dirs: np.ndarray,
    t_max: np.ndarray | float = np.inf,
) -> tuple[np.ndarray, np.ndarray]:
    """Voxels visited by each ray, clipped to ``[0, t_max]``.

    Parameters
    ----------
    grid:
        The uniform grid.
    origins, dirs:
        ``(N, 3)`` ray batch (directions need not be unit length, but ``t_max``
        is interpreted in the same parameterization).
    t_max:
        Per-ray (or scalar) traversal limit — typically the hit distance, or
        +inf for rays that escape.

    Returns
    -------
    ray_idx, voxel_id:
        Parallel int64 arrays; row ``k`` says ray ``ray_idx[k]`` visited voxel
        ``voxel_id[k]``.  Visits are emitted in traversal order per ray and
        are unique per (ray, voxel).
    """
    origins = np.asarray(origins, dtype=np.float64)
    dirs = np.asarray(dirs, dtype=np.float64)
    n = origins.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    t_max = np.broadcast_to(np.asarray(t_max, dtype=np.float64), (n,)).copy()

    with np.errstate(divide="ignore", over="ignore"):
        inv = 1.0 / dirs

    hit, t_enter, t_exit = ray_aabb_intersect(
        origins, inv, grid.bounds.lo, grid.bounds.hi, t_max=t_max
    )
    active = hit & (t_enter <= t_exit)
    if not np.any(active):
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    # Entry points nudged inside the grid to avoid landing exactly on a face.
    t0 = t_enter + 1e-12
    entry = origins + t0[:, None] * dirs
    cell = grid.cell_of_points(entry)

    step = np.sign(dirs).astype(np.int64)
    # Parametric distance to cross one cell along each axis (inf for axes
    # the ray does not move along).
    t_delta = np.abs(grid.cell_size * inv)

    # Parametric t at which the ray crosses the next cell boundary per axis.
    next_boundary = grid.bounds.lo + (cell + (step > 0)) * grid.cell_size
    with np.errstate(invalid="ignore"):
        t_next = (next_boundary - origins) * inv
    t_next = np.where(dirs != 0.0, t_next, np.inf)

    out_ray: list[np.ndarray] = []
    out_vox: list[np.ndarray] = []
    ray_ids = np.arange(n, dtype=np.int64)

    # Hard bound on steps: a straight line crosses at most nx+ny+nz+3 cells.
    max_steps = int(grid.res.sum()) + 3
    for _ in range(max_steps):
        if not np.any(active):
            break
        idx = ray_ids[active]
        out_ray.append(idx)
        out_vox.append(grid.flatten(cell[active]))

        # Choose the axis whose boundary is nearest for each active ray.
        axis = np.argmin(t_next[active], axis=1)
        rows = idx
        cell[rows, axis] += step[rows, axis]
        crossed_t = t_next[rows, axis]
        t_next[rows, axis] += t_delta[rows, axis]

        # A ray dies when it leaves the grid or passes its t limit at the
        # crossing it just made.
        alive = (
            (cell[rows, axis] >= 0)
            & (cell[rows, axis] < grid.res[axis])
            & (crossed_t <= t_exit[rows])
        )
        active[rows[~alive]] = False

    if not out_ray:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(out_ray), np.concatenate(out_vox)
