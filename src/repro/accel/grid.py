"""Uniform spatial subdivision (voxel grid).

The paper divides object space "into voxels (or cubes) through uniform
spatial subdivision"; rays are tracked through the grid with a modified
3-D DDA and each voxel keeps a list of the pixels whose rays traverse it.
This module provides the grid geometry: world/voxel coordinate mapping,
AABB voxelization (used by change detection) and per-voxel object lists
(used by the grid-traversal tracer and by tests).
"""

from __future__ import annotations

import numpy as np

from ..geometry import Primitive
from ..rmath import AABB

__all__ = ["UniformGrid"]


class UniformGrid:
    """A ``(nx, ny, nz)`` lattice of axis-aligned voxels over ``bounds``.

    Flat voxel ids are row-major: ``vid = (iz * ny + iy) * nx + ix``.
    """

    def __init__(self, bounds: AABB, resolution: tuple[int, int, int] | int):
        if isinstance(resolution, int):
            resolution = (resolution, resolution, resolution)
        self.res = np.asarray(resolution, dtype=np.int64)
        if np.any(self.res < 1):
            raise ValueError("grid resolution must be >= 1 on every axis")
        if bounds.is_empty() or np.any(bounds.extent <= 0):
            raise ValueError("grid bounds must have positive volume")
        self.bounds = bounds
        self.cell_size = bounds.extent / self.res
        self.n_voxels = int(self.res.prod())

    # -- coordinate mapping --------------------------------------------------
    def cell_of_points(self, points: np.ndarray) -> np.ndarray:
        """Integer cell coordinates ``(N, 3)`` of world points, clipped."""
        p = np.asarray(points, dtype=np.float64)
        rel = (p - self.bounds.lo) / self.cell_size
        cells = np.floor(rel).astype(np.int64)
        return np.clip(cells, 0, self.res - 1)

    def flatten(self, cells: np.ndarray) -> np.ndarray:
        """Flat voxel ids from ``(N, 3)`` integer coordinates."""
        c = np.asarray(cells, dtype=np.int64)
        return (c[..., 2] * self.res[1] + c[..., 1]) * self.res[0] + c[..., 0]

    def unflatten(self, vids: np.ndarray) -> np.ndarray:
        """Integer coordinates ``(N, 3)`` from flat voxel ids."""
        v = np.asarray(vids, dtype=np.int64)
        ix = v % self.res[0]
        rest = v // self.res[0]
        iy = rest % self.res[1]
        iz = rest // self.res[1]
        return np.stack([ix, iy, iz], axis=-1)

    def voxel_bounds(self, vid: int) -> AABB:
        """World-space box of one voxel."""
        c = self.unflatten(np.asarray([vid]))[0]
        lo = self.bounds.lo + c * self.cell_size
        return AABB(lo, lo + self.cell_size)

    # -- voxelization ---------------------------------------------------------
    def voxels_overlapping(self, box: AABB) -> np.ndarray:
        """Flat ids of all voxels intersecting ``box`` (clipped to the grid)."""
        if box.is_empty():
            return np.empty(0, dtype=np.int64)
        lo = np.maximum(box.lo, self.bounds.lo)
        hi = np.minimum(box.hi, self.bounds.hi)
        if np.any(lo > hi):
            return np.empty(0, dtype=np.int64)
        c_lo = self.cell_of_points(lo[None, :])[0]
        # hi sitting exactly on a cell boundary should not spill into the
        # next cell; nudge inward by a hair before flooring.
        c_hi = self.cell_of_points((hi - 1e-12 * np.maximum(self.cell_size, 1e-30))[None, :])[0]
        c_hi = np.maximum(c_hi, c_lo)
        xs = np.arange(c_lo[0], c_hi[0] + 1)
        ys = np.arange(c_lo[1], c_hi[1] + 1)
        zs = np.arange(c_lo[2], c_hi[2] + 1)
        gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
        cells = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=-1)
        return self.flatten(cells)

    # -- object lists -----------------------------------------------------------
    def build_object_lists(self, objects: list[Primitive]) -> dict[int, np.ndarray]:
        """Map each voxel id to the indices of objects whose bounds touch it.

        Infinite primitives (planes) are clipped to the grid bounds, so they
        appear in every voxel their clipped slab intersects.
        """
        vox_to_obj: dict[int, list[int]] = {}
        for idx, obj in enumerate(objects):
            b = obj.bounds()
            lo = np.where(np.isfinite(b.lo), b.lo, self.bounds.lo)
            hi = np.where(np.isfinite(b.hi), b.hi, self.bounds.hi)
            for vid in self.voxels_overlapping(AABB(lo, hi)):
                vox_to_obj.setdefault(int(vid), []).append(idx)
        return {vid: np.asarray(lst, dtype=np.int64) for vid, lst in vox_to_obj.items()}

    @staticmethod
    def for_scene(scene, resolution: tuple[int, int, int] | int = 16) -> "UniformGrid":
        """Grid over a scene's voxelizable region (see ``Scene.world_bounds``)."""
        return UniformGrid(scene.world_bounds(), resolution)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniformGrid(res={tuple(self.res)}, n_voxels={self.n_voxels})"
