#!/usr/bin/env python
"""CI service smoke: ``kill -9`` the render service mid-job, resume, verify.

The drill the persistent service is built around, end to end and out of
process:

1. render crash-free **references** for two job specs in-process;
2. start ``repro serve`` as a subprocess, submit the two jobs with
   different priorities over the RNW1 control socket;
3. poll job status until the first job is demonstrably mid-render
   (tasks spooled, more to go), then ``SIGKILL`` the daemon — no
   warning, no cleanup, exactly like a workstation losing power;
4. restart ``repro serve --resume`` on the same state directory and
   wait for **both** jobs to finish.

Exits non-zero if anything the service promises drifts:

* either job fails to reach ``done`` after the restart,
* the interrupted job re-renders work (``n_from_checkpoint`` empty),
* either job's frames differ from its crash-free reference by one bit,
* any event log violates the pinned telemetry schema,
* either job's trace has orphan spans (tools/trace_lint.py also runs on
  the exported Chrome trace), or
* the daemon fails to refuse a stale state dir without ``--resume``.

Usage::

    python tools/service_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api import RenderRequest, render  # noqa: E402
from repro.obs import find_orphan_spans, write_chrome_trace  # noqa: E402
from repro.service import client as svc  # noqa: E402
from repro.telemetry import SchemaError, read_events, validate_events  # noqa: E402

#: Job A is big enough to be mid-flight when the SIGKILL lands; job B
#: queues behind it at lower priority and must survive the crash too.
SPEC_A = {"workload": "newton", "n_frames": 8, "width": 64, "height": 48,
          "grid_resolution": 12}
SPEC_B = {"workload": "newton", "n_frames": 3, "width": 48, "height": 36,
          "grid_resolution": 12}
FARM = {"n_workers": 2, "executor": "thread"}


def reference_frames(spec: dict) -> np.ndarray:
    """The crash-free oracle: the same farm render, no service, no crash."""
    result = render(RenderRequest(engine="farm", schedule="static",
                                  **FARM, **spec))
    return np.asarray(result.frames)


def start_daemon(state_dir: Path, *, resume: bool) -> subprocess.Popen:
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--state-dir", str(state_dir), "--port", "0",
        "--workers", str(FARM["n_workers"]), "--executor", FARM["executor"],
        "--verbose",
    ]
    if resume:
        cmd.append("--resume")
    return subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env={**os.environ,
             "PYTHONPATH": str(ROOT / "src") + os.pathsep
             + os.environ.get("PYTHONPATH", "")},
    )


def control_addr(state_dir: Path, proc: subprocess.Popen,
                 not_pid: int | None = None, timeout: float = 30.0) -> str:
    """Wait for the daemon to publish its (freshly bound) control address."""
    info_path = state_dir / "service.json"
    deadline = time.time() + timeout
    while time.time() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read().decode(errors="replace")
            raise RuntimeError(f"daemon exited {proc.returncode} early:\n{out}")
        if info_path.exists():
            info = json.loads(info_path.read_text())
            if info.get("pid") != not_pid:
                return f"{info['host']}:{info['port']}"
        time.sleep(0.05)
    raise RuntimeError("daemon never published service.json")


def fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


def job_frames(state_dir: Path, job_id: str) -> np.ndarray:
    with np.load(state_dir / "jobs" / job_id / "frames.npz") as npz:
        return npz["frames"]


def check_job_trace(state_dir: Path, job_id: str) -> str | None:
    events = read_events(state_dir / "jobs" / job_id / "events.jsonl")
    if not events:
        return f"job {job_id} has no event log"
    try:
        validate_events(events)
    except SchemaError as exc:
        return f"job {job_id} telemetry schema drift: {exc}"
    orphans = find_orphan_spans(events)
    if orphans:
        return f"job {job_id} trace has {len(orphans)} orphan spans"
    return None


def main(argv: list[str] | None = None) -> int:
    argparse.ArgumentParser(description=__doc__).parse_args(argv)

    print("rendering crash-free references...")
    ref_a = reference_frames(SPEC_A)
    ref_b = reference_frames(SPEC_B)

    with tempfile.TemporaryDirectory(prefix="service_smoke_") as tmp:
        state_dir = Path(tmp) / "svc"

        # -- phase 1: submit two jobs, SIGKILL the daemon mid-first-job ------
        daemon = start_daemon(state_dir, resume=False)
        addr = control_addr(state_dir, daemon)
        job_a = svc.submit(addr, RenderRequest(**SPEC_A, **FARM), priority=5,
                           owner="smoke", max_attempts=3)["job_id"]
        job_b = svc.submit(addr, RenderRequest(**SPEC_B, **FARM), priority=1,
                           owner="smoke", max_attempts=3)["job_id"]
        print(f"submitted {job_a} (priority 5) and {job_b} (priority 1) to {addr}")

        deadline = time.time() + 120.0
        killed_at = None
        while time.time() < deadline:
            status = svc.job_status(addr, job_a)
            if status["state"] == "done":
                return fail("job finished before the kill; enlarge SPEC_A")
            if status["state"] == "running" and status["tasks_done"] >= 2:
                killed_at = status["tasks_done"]
                break
            time.sleep(0.05)
        if killed_at is None:
            daemon.kill()
            return fail(f"{job_a} never got mid-flight within the deadline")
        old_pid = json.loads((state_dir / "service.json").read_text())["pid"]
        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=30.0)
        print(f"SIGKILL'd the daemon with {killed_at} tasks of {job_a} spooled")

        # A fresh daemon must refuse the stale state dir without --resume.
        refused = start_daemon(state_dir, resume=False)
        refused.wait(timeout=30.0)
        if refused.returncode == 0:
            return fail("daemon accepted a stale state dir without --resume")
        refused.stdout.read()

        # -- phase 2: resume and finish both jobs ----------------------------
        daemon = start_daemon(state_dir, resume=True)
        try:
            addr = control_addr(state_dir, daemon, not_pid=old_pid)
            done = svc.wait(addr, [job_a, job_b], timeout=240.0)
        finally:
            daemon.terminate()
            daemon.wait(timeout=30.0)
            daemon.stdout.read()

        for job_id in (job_a, job_b):
            if done[job_id]["state"] != "done":
                return fail(f"{job_id} ended {done[job_id]['state']} "
                            f"({done[job_id]['detail']}) after resume")
        resumed = done[job_a]["n_from_checkpoint"]
        if resumed < killed_at:
            return fail(f"{job_a} resumed only {resumed} tasks from the "
                        f"checkpoint spool; {killed_at} were journaled")
        print(f"both jobs done after --resume; {job_a} reused "
              f"{resumed}/{done[job_a]['n_tasks']} spooled tasks")

        # -- verification ----------------------------------------------------
        if not np.array_equal(job_frames(state_dir, job_a), ref_a):
            return fail(f"{job_a} frames differ from the crash-free reference")
        if not np.array_equal(job_frames(state_dir, job_b), ref_b):
            return fail(f"{job_b} frames differ from the crash-free reference")

        for job_id in (job_a, job_b):
            problem = check_job_trace(state_dir, job_id)
            if problem:
                return fail(problem)
        try:
            validate_events(read_events(state_dir / "service.events.jsonl"))
        except SchemaError as exc:
            return fail(f"service telemetry schema drift: {exc}")

        trace_dir = Path(tmp) / "traces"
        trace_dir.mkdir()
        events = read_events(state_dir / "jobs" / job_a / "events.jsonl")
        run_id = next((e.get("run") for e in events if e.get("run")), "")
        write_chrome_trace(events, trace_dir / "service.trace.json",
                           run_id=str(run_id or ""))
        lint = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "trace_lint.py"),
             str(trace_dir)],
            capture_output=True, text=True,
        )
        if lint.returncode != 0:
            return fail(f"trace lint failed:\n{lint.stdout}{lint.stderr}")

    print("OK: kill -9 + --resume completed every job bit-identically")
    print("  event logs schema-valid, 0 orphan spans, Chrome trace lints clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
