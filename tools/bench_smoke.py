#!/usr/bin/env python
"""CI benchmark smoke: a tiny instrumented render, gated on the bench contract.

Runs one small farm render through the unified API with telemetry on,
distills the event log into the required bench metrics, writes
``BENCH_smoke.json``, and exits non-zero if anything drifts:

* the event log violates the pinned telemetry schema,
* the core event set is not covered,
* the bench payload loses a required metric key,
* the render produced no work (zero rays or pixels).

Usage::

    python tools/bench_smoke.py [--out benchmarks/results]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import RenderRequest, render  # noqa: E402
from repro.telemetry import (  # noqa: E402
    CORE_EVENTS,
    REQUIRED_BENCH_METRICS,
    SchemaError,
    metrics_from_events,
    validate_bench,
    validate_events,
    write_bench_json,
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", type=Path, default=Path("benchmarks/results"))
    ap.add_argument("--frames", type=int, default=3)
    ap.add_argument("--width", type=int, default=48)
    ap.add_argument("--height", type=int, default=36)
    args = ap.parse_args(argv)

    result = render(
        RenderRequest(
            workload="newton",
            engine="farm",
            executor="thread",
            n_workers=2,
            mode="frame",
            n_frames=args.frames,
            width=args.width,
            height=args.height,
            grid_resolution=12,
            verify=True,
            telemetry=True,
        )
    )
    if result.bit_identical is not True:
        print("FAIL: farm output not bit-identical to the serial reference")
        return 1

    try:
        validate_events(result.events)
    except SchemaError as exc:
        print(f"FAIL: telemetry schema drift: {exc}")
        return 1
    names = {e["name"] for e in result.events}
    missing = set(CORE_EVENTS) - names
    if missing:
        print(f"FAIL: core telemetry events missing: {sorted(missing)}")
        return 1

    metrics = metrics_from_events(result.events)
    try:
        path = write_bench_json(args.out, "smoke", metrics, extra={"engine": "farm"})
        validate_bench(json.loads(path.read_text()))
    except ValueError as exc:
        print(f"FAIL: bench payload drift: {exc}")
        return 1
    if metrics["rays_total"] <= 0 or metrics["computed_pixels"] <= 0:
        print(f"FAIL: smoke render did no work: {metrics}")
        return 1

    print(f"OK: {path}")
    for key in REQUIRED_BENCH_METRICS:
        print(f"  {key:<18} {metrics[key]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
