#!/usr/bin/env python
"""CI benchmark smoke: a tiny instrumented render, gated on the bench contract.

Runs one small farm render through the unified API with telemetry on,
distills the event log into the required bench metrics, writes
``BENCH_smoke.json``, and exits non-zero if anything drifts:

* the event log violates the pinned telemetry schema,
* the core event set is not covered,
* the bench payload loses a required metric key,
* the render produced no work (zero rays or pixels),
* a scheduling policy dispatches differently on the simulator transport
  than on the process transport (per-task assignment-log diff for one
  demand-driven and one adaptive policy).

Usage::

    python tools/bench_smoke.py [--out benchmarks/results]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import RenderRequest, render  # noqa: E402
from repro.telemetry import (  # noqa: E402
    CORE_EVENTS,
    REQUIRED_BENCH_METRICS,
    SchemaError,
    metrics_from_events,
    validate_bench,
    validate_events,
    write_bench_json,
)


def _diff_transport_logs() -> list[str]:
    """Run one demand-driven and one adaptive policy on BOTH transports
    (simulator vs. supervised process pool) over a tiny synthetic oracle
    and diff the per-task assignment logs.  Returns human-readable
    mismatch lines; empty means the scheduling core is transport-agnostic.
    """
    import numpy as np

    from repro.cluster import ThrashModel, ncsu_testbed
    from repro.parallel.config import RenderFarmConfig
    from repro.parallel.oracle import AnimationCostOracle
    from repro.sched import (
        OracleCostModel,
        ProcessTransport,
        SimTransport,
        assignment_echo_task,
        make_policy,
    )

    n_frames, width, height = 6, 6, 4
    n_px = width * height
    rng_costs = (np.arange(n_frames * n_px, dtype=np.int32).reshape(n_frames, n_px) % 5) + 1
    dirty = [np.array([], dtype=np.int64)] + [
        np.arange(f % n_px, dtype=np.int64) for f in range(1, n_frames)
    ]
    oracle = AnimationCostOracle(width, height, n_frames, rng_costs, dirty, grid_resolution=4)
    machines = ncsu_testbed()
    cfg = RenderFarmConfig()

    cases = {
        # queue-ordered: any worker count dispatches identically
        "demand-driven": (
            lambda: make_policy("frame-division-nofc", n_frames, n_regions=1),
            2,
        ),
        # chain-ordered: one worker walks the chains deterministically
        "adaptive": (
            lambda: make_policy(
                "sequence-division-fc", n_frames, sequence_ranges=[(0, 3), (3, 6)]
            ),
            1,
        ),
    }
    problems: list[str] = []
    for name, (build, n_workers) in cases.items():
        p_sim, p_proc = build(), build()
        SimTransport(
            p_sim, oracle, machines[:n_workers], cfg,
            label=name, sec_per_work_unit=1e-4, thrash=ThrashModel(alpha=0.0),
        ).run()
        ProcessTransport(
            p_proc, assignment_echo_task, lambda a, lane: a.key(),
            n_workers=n_workers, executor="serial",
        ).run()
        sim_log = [a.key() for a in p_sim.log]
        proc_log = [a.key() for a in p_proc.log]
        if sim_log != proc_log:
            problems.append(f"{name}: sim dispatched {sim_log} but process {proc_log}")
            continue
        cost = OracleCostModel(oracle, cfg)
        if cost.total_rays_of_log(p_sim.log) != cost.total_rays_of_log(p_proc.log):
            problems.append(f"{name}: transports disagree on modelled ray totals")
    return problems


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", type=Path, default=Path("benchmarks/results"))
    ap.add_argument("--frames", type=int, default=3)
    ap.add_argument("--width", type=int, default=48)
    ap.add_argument("--height", type=int, default=36)
    args = ap.parse_args(argv)

    result = render(
        RenderRequest(
            workload="newton",
            engine="farm",
            executor="thread",
            n_workers=2,
            mode="frame",
            n_frames=args.frames,
            width=args.width,
            height=args.height,
            grid_resolution=12,
            verify=True,
            telemetry=True,
        )
    )
    if result.bit_identical is not True:
        print("FAIL: farm output not bit-identical to the serial reference")
        return 1

    try:
        validate_events(result.events)
    except SchemaError as exc:
        print(f"FAIL: telemetry schema drift: {exc}")
        return 1
    names = {e["name"] for e in result.events}
    missing = set(CORE_EVENTS) - names
    if missing:
        print(f"FAIL: core telemetry events missing: {sorted(missing)}")
        return 1

    metrics = metrics_from_events(result.events)
    try:
        path = write_bench_json(args.out, "smoke", metrics, extra={"engine": "farm"})
        validate_bench(json.loads(path.read_text()))
    except ValueError as exc:
        print(f"FAIL: bench payload drift: {exc}")
        return 1
    if metrics["rays_total"] <= 0 or metrics["computed_pixels"] <= 0:
        print(f"FAIL: smoke render did no work: {metrics}")
        return 1

    mismatches = _diff_transport_logs()
    if mismatches:
        print("FAIL: scheduler transports diverged:")
        for line in mismatches:
            print(f"  {line}")
        return 1
    print("OK: sim and process transports dispatch identically (demand + adaptive)")

    print(f"OK: {path}")
    for key in REQUIRED_BENCH_METRICS:
        print(f"  {key:<18} {metrics[key]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
