#!/usr/bin/env python3
"""Compare fresh BENCH_*.json files against committed baselines.

CI regenerates the benchmark JSONs in-place (``benchmarks/results/``), so
a regression is invisible unless something remembers what the numbers
used to be.  The bench-smoke job snapshots the *committed* baselines
before running any benchmark, then calls::

    python tools/bench_compare.py --baseline-dir <snapshot> benchmarks/results

Comparison policy is per metric:

* **determinism metrics** (ray counts, pixel counts, frame and worker
  counts) must match the baseline *exactly* — the whole repository's
  bit-identical-recovery story rests on these, so any drift is a bug (or
  a deliberate change that must re-commit the baseline);
* **timing metrics** (``wall_time``) get a loose relative ceiling
  (default 2.0 = fresh may be up to 3x the baseline) — CI machines are
  noisy, so the gate only catches order-of-magnitude regressions, and
  getting *faster* never fails;
* baselines carry historical ``schema_version`` values (4..N); versions
  are deliberately **not** validated here — the schema gate lives in
  ``validate_bench``, this tool only compares metric values.

Exit status: 0 when every compared bench passes, 1 on any regression,
2 on usage errors (no benches found).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: metric -> (kind, tolerance).  "exact": values must be equal.  "rel":
#: fresh <= baseline * (1 + tol) passes (one-sided: faster is never a
#: regression).  Metrics absent here default to "exact" — new metrics
#: added to the bench schema are determinism metrics until declared noisy.
TOLERANCES: dict[str, tuple[str, float]] = {
    "wall_time": ("rel", 2.0),
}


def compare_metrics(
    name: str, baseline: dict, fresh: dict, wall_tol: float | None = None
) -> list[str]:
    """Return a list of human-readable regression strings (empty = pass)."""
    problems: list[str] = []
    base_metrics = baseline.get("metrics") or {}
    fresh_metrics = fresh.get("metrics") or {}
    for metric in sorted(base_metrics):
        if metric not in fresh_metrics:
            problems.append(f"{name}: metric {metric!r} missing from fresh run")
            continue
        want, got = base_metrics[metric], fresh_metrics[metric]
        kind, tol = TOLERANCES.get(metric, ("exact", 0.0))
        if kind == "rel" and wall_tol is not None and metric == "wall_time":
            tol = wall_tol
        if kind == "exact":
            if got != want:
                problems.append(
                    f"{name}: {metric} changed {want!r} -> {got!r} (exact-match metric)"
                )
        else:  # "rel", one-sided
            try:
                want_f, got_f = float(want), float(got)
            except (TypeError, ValueError):
                problems.append(f"{name}: {metric} not numeric ({want!r} -> {got!r})")
                continue
            ceiling = want_f * (1.0 + tol)
            if got_f > ceiling:
                problems.append(
                    f"{name}: {metric} regressed {want_f:.3f}s -> {got_f:.3f}s "
                    f"(ceiling {ceiling:.3f}s at +{tol:.0%})"
                )
    return problems


def _load(path: Path) -> dict | None:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"bench-compare: cannot read {path}: {exc}", file=sys.stderr)
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description="Gate fresh BENCH_*.json files against committed baselines.",
    )
    parser.add_argument(
        "fresh_dir", type=Path,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=Path("benchmarks/results"),
        metavar="DIR",
        help="directory holding the committed baseline BENCH_*.json files "
        "(snapshot it before benches overwrite in place)",
    )
    parser.add_argument(
        "--wall-tol", type=float, default=None, metavar="X",
        help="override the relative wall_time ceiling (default 2.0 = 3x baseline)",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="fail if BENCH_<NAME>.json is missing from the fresh dir "
        "(repeatable); by default only benches present on both sides compare",
    )
    args = parser.parse_args(argv)

    baselines = {p.name: p for p in sorted(args.baseline_dir.glob("BENCH_*.json"))}
    fresh = {p.name: p for p in sorted(args.fresh_dir.glob("BENCH_*.json"))}
    if not baselines:
        print(f"bench-compare: no baselines in {args.baseline_dir}", file=sys.stderr)
        return 2
    for name in args.require:
        if f"BENCH_{name}.json" not in fresh:
            print(f"bench-compare: required bench {name!r} missing from "
                  f"{args.fresh_dir}", file=sys.stderr)
            return 1

    n_compared = 0
    problems: list[str] = []
    for filename, base_path in baselines.items():
        fresh_path = fresh.get(filename)
        if fresh_path is None:
            print(f"  skip  {filename:<32} (not regenerated this run)")
            continue
        base_doc, fresh_doc = _load(base_path), _load(fresh_path)
        if base_doc is None or fresh_doc is None:
            problems.append(f"{filename}: unreadable")
            continue
        n_compared += 1
        bench_problems = compare_metrics(
            fresh_doc.get("bench", filename), base_doc, fresh_doc, args.wall_tol
        )
        if bench_problems:
            problems.extend(bench_problems)
            print(f"  FAIL  {filename}")
        else:
            base_wall = float((base_doc.get("metrics") or {}).get("wall_time", 0.0))
            fresh_wall = float((fresh_doc.get("metrics") or {}).get("wall_time", 0.0))
            print(f"  ok    {filename:<32} wall {base_wall:.2f}s -> {fresh_wall:.2f}s")

    if not n_compared:
        print("bench-compare: nothing to compare (no overlapping benches)",
              file=sys.stderr)
        return 2
    if problems:
        print(f"\nbench-compare: {len(problems)} regression(s):", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print(f"bench-compare: {n_compared} bench(es) within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
