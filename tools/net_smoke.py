#!/usr/bin/env python
"""CI network smoke: a loopback TCP farm survives a worker kill, bit-identically.

Runs a small Newton render on the real TCP transport (``repro.net``): a
master on 127.0.0.1 and two spawned worker daemons, with worker 0
configured to ``os._exit`` after its first completed assignment.  Exits
non-zero if anything the network layer promises drifts:

* the farm does not record at least one crash + recovery (the kill was
  swallowed or the run finished without it),
* the recovered output is not bit-identical to the serial single-renderer
  reference (golden-image equality),
* the telemetry log violates the pinned schema, or
* the ``net.*`` events (listen / join / assign / result / worker.lost)
  are missing from the log.

Usage::

    python tools/net_smoke.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import RenderRequest, render  # noqa: E402
from repro.telemetry import SchemaError, validate_events  # noqa: E402

REQUIRED_NET_EVENTS = {
    "net.listen",
    "net.worker.join",
    "net.assign",
    "net.result",
    "net.worker.lost",
}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--frames", type=int, default=4)
    ap.add_argument("--width", type=int, default=24)
    ap.add_argument("--height", type=int, default=18)
    args = ap.parse_args(argv)

    result = render(
        RenderRequest(
            workload="newton",
            engine="farm",
            n_workers=2,
            schedule="adaptive",
            transport="tcp",
            net_die_after={0: 1},  # worker 0 dies after its first assignment
            n_frames=args.frames,
            width=args.width,
            height=args.height,
            grid_resolution=12,
            verify=True,
            telemetry=True,
        )
    )

    if result.recovery["crashes"] < 1 or result.recovery["retries"] < 1:
        print(f"FAIL: injected worker kill not recovered: {result.recovery}")
        return 1
    if result.bit_identical is not True:
        print("FAIL: recovered TCP farm output differs from the serial reference")
        return 1

    try:
        validate_events(result.events)
    except SchemaError as exc:
        print(f"FAIL: telemetry schema drift: {exc}")
        return 1
    names = {e["name"] for e in result.events}
    missing = REQUIRED_NET_EVENTS - names
    if missing:
        print(f"FAIL: net telemetry events missing: {sorted(missing)}")
        return 1
    if "recovery" not in names:
        print("FAIL: no recovery event emitted for the killed worker")
        return 1

    losses = [e for e in result.events if e["name"] == "net.worker.lost"]
    print("OK: loopback TCP farm recovered from an injected worker kill")
    print(f"  crashes={result.recovery['crashes']} retries={result.recovery['retries']}")
    print(f"  losses={[(e['attrs']['worker'], e['attrs']['reason']) for e in losses]}")
    print("  output bit-identical to serial reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
