#!/usr/bin/env python
"""CI network smoke: a loopback TCP farm survives a worker kill, bit-identically.

Runs a small Newton render on the real TCP transport (``repro.net``): a
master on 127.0.0.1 and two spawned worker daemons, with worker 0
configured to ``os._exit`` after its first completed assignment.  Exits
non-zero if anything the network layer promises drifts:

* the farm does not record at least one crash + recovery (the kill was
  swallowed or the run finished without it),
* the recovered output is not bit-identical to the serial single-renderer
  reference (golden-image equality),
* the telemetry log violates the pinned schema,
* the merged master+worker trace has orphan spans,
* the ``net.*`` events (listen / join / assign / result / worker.lost)
  are missing from the log, or
* the victim's flight-recorder black box (the kill is mid-frame, via
  ``--die-after-frames``) is missing, unparseable, not pointed at by the
  ``net.worker.lost`` event, or stitches into the merged trace with
  orphan spans / without the victim's final open task span.

A second phase starts ``repro farm --transport tcp --status-port N`` as
a subprocess, polls the live JSON endpoint while the run is in flight,
and fails if no mid-run snapshot is served, if the run writes anything
to stderr, or if its event log has orphan spans.  The same loop polls
the ``/preview`` endpoint of the distributed framebuffer and fails
unless a *partially-complete* composite (``frames_complete`` below the
frame count) is served before the run finishes, with a valid PNG body.
It also polls ``/metrics`` mid-run and fails unless a well-formed
Prometheus text exposition (HELP/TYPE comments, ``name{labels} value``
samples) with task-latency quantiles and per-worker health is served
while the run is in flight.

Usage::

    python tools/net_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import time
import tracemalloc
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import RenderRequest, render  # noqa: E402
from repro.obs import (  # noqa: E402
    fetch_status,
    find_orphan_spans,
    read_blackbox,
    stitch_blackbox,
)
from repro.telemetry import SchemaError, read_events, validate_events  # noqa: E402

REQUIRED_NET_EVENTS = {
    "net.listen",
    "net.worker.join",
    "net.assign",
    "net.result",
    "net.worker.lost",
}


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _fetch_raw(port: int, path: str) -> tuple[str, bytes]:
    """GET a status-server path raw (``fetch_status`` JSON-decodes)."""
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=1.0) as resp:
        return resp.headers.get("Content-Type", ""), resp.read()


#: One Prometheus text-format sample: name, optional {labels}, float value.
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+-]+|[+-]?Inf|NaN)$"
)


def check_exposition(content_type: str, body: bytes) -> list[str]:
    """Validate a Prometheus text exposition; returns problem strings.

    The same spirit as tools/trace_lint.py for Chrome traces: every line
    must be blank, a ``# HELP``/``# TYPE`` comment, or a
    ``name{labels} value`` sample with a parseable float value, and every
    sampled metric family must have a ``# TYPE``.
    """
    problems: list[str] = []
    if not content_type.startswith("text/plain"):
        problems.append(f"content-type {content_type!r} is not text/plain")
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        return problems + [f"body is not utf-8: {exc}"]
    typed: set[str] = set()
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "untyped"
            ):
                problems.append(f"line {i}: malformed TYPE comment {line!r}")
            else:
                typed.add(parts[2])
            continue
        if line.startswith("#"):
            problems.append(f"line {i}: unknown comment {line!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {i}: unparseable sample {line!r}")
            continue
        name = m.group(1)
        try:
            float(m.group(3))
        except ValueError:
            problems.append(f"line {i}: non-numeric value in {line!r}")
        family = re.sub(r"_(sum|count|total|bucket)$", "", name)
        if name not in typed and family not in typed:
            problems.append(f"line {i}: sample {name!r} has no # TYPE")
    return problems


def live_status_drill(args) -> int:
    """Phase 2: a real ``repro farm --status-port`` run, polled live."""
    port = _free_port()
    with tempfile.TemporaryDirectory(prefix="net_smoke_") as tmp:
        run_dir = Path(tmp)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "farm", "newton",
                "--transport", "tcp", "--workers", "2",
                "--frames", str(args.frames),
                "--width", str(args.width), "--height", str(args.height),
                "--grid", "12",
                "--status-port", str(port),
                "--telemetry", str(run_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env={
                **os.environ,
                "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")
                + os.pathsep
                + os.environ.get("PYTHONPATH", ""),
            },
        )
        snapshots = []
        previews = []
        png = None
        metrics = None  # latest (content_type, body) served while in flight
        n_metrics_polls = 0
        deadline = time.time() + 120.0
        while proc.poll() is None and time.time() < deadline:
            try:
                snap = fetch_status(f"127.0.0.1:{port}", timeout=1.0)
                if snap.get("n_events", 0) > 0 and not snap.get("done"):
                    snapshots.append(snap)
            except OSError:
                pass
            try:
                prev = json.loads(_fetch_raw(port, "/preview?fmt=json")[1])
                if prev.get("available") and prev.get("frames_complete", 0) < args.frames:
                    previews.append(prev)
                    if png is None:
                        png = _fetch_raw(port, "/preview?fmt=png")
            except (OSError, ValueError):
                pass
            try:
                metrics = _fetch_raw(port, "/metrics")
                n_metrics_polls += 1
            except OSError:
                pass
            time.sleep(0.1)
        try:
            stdout, stderr = proc.communicate(timeout=120.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            print("FAIL: --status-port farm run hung")
            return 1

        if proc.returncode != 0:
            print(f"FAIL: --status-port farm run exited {proc.returncode}")
            sys.stdout.buffer.write(stdout + stderr)
            return 1
        if stderr:
            print(f"FAIL: farm run wrote {len(stderr)} bytes to stderr:")
            sys.stdout.buffer.write(stderr)
            return 1
        if not snapshots:
            print("FAIL: status endpoint never served a mid-run snapshot")
            return 1
        if not previews:
            print("FAIL: /preview never served a partially-complete frame mid-run")
            return 1
        if png is None or png[0] != "image/png" or png[1][:8] != b"\x89PNG\r\n\x1a\n":
            print("FAIL: /preview?fmt=png did not serve a valid PNG")
            return 1
        if metrics is None:
            print("FAIL: /metrics never answered mid-run")
            return 1
        exposition_problems = check_exposition(*metrics)
        if exposition_problems:
            print(f"FAIL: /metrics exposition invalid ({len(exposition_problems)}):")
            for p in exposition_problems[:10]:
                print(f"  - {p}")
            return 1
        metrics_text = metrics[1].decode("utf-8")
        for needle in (
            'repro_task_duration{quantile="0.5"}',
            'repro_task_duration{quantile="0.95"}',
            'repro_task_duration{quantile="0.99"}',
            "repro_worker_health{",
        ):
            if needle not in metrics_text:
                print(f"FAIL: /metrics exposition is missing {needle!r}")
                return 1
        events = read_events(run_dir)
        orphans = find_orphan_spans(events)
        if orphans:
            print(f"FAIL: {len(orphans)} orphan spans in the live-run trace")
            return 1
        last = snapshots[-1]
        best = max(previews, key=lambda p: p.get("coverage", 0.0))
        print("OK: live status endpoint served the run")
        print(
            f"  {len(snapshots)} mid-run snapshots; last: "
            f"{last.get('tasks_done', 0)} tasks, {last.get('n_events', 0)} events, "
            f"{len(last.get('workers', []))} workers"
        )
        print(
            f"  {len(previews)} partial /preview snapshots; peak: frame "
            f"{best.get('frame')} at {best.get('coverage', 0.0):.0%} coverage, "
            f"{best.get('frames_complete', 0)}/{args.frames} frames complete"
        )
        print(f"  /preview?fmt=png served {len(png[1])} bytes of valid PNG")
        print(
            f"  /metrics polled {n_metrics_polls}x mid-run; last exposition "
            f"{len(metrics[1])} bytes, valid, with task-latency quantiles"
        )
        print(f"  {len(events)} events on disk, 0 orphan spans, stderr clean")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--frames", type=int, default=4)
    ap.add_argument("--width", type=int, default=24)
    ap.add_argument("--height", type=int, default=18)
    args = ap.parse_args(argv)

    # Peak-allocation accounting for the master process: the zero-copy
    # data plane's whole point is that the kill drill (decode, reassembly,
    # compositing, verify) should not allocate frames it merely forwards.
    blackbox_tmp = tempfile.TemporaryDirectory(prefix="net_smoke_blackbox_")
    blackbox_dir = Path(blackbox_tmp.name)
    tracemalloc.start()
    result = render(
        RenderRequest(
            workload="newton",
            engine="farm",
            n_workers=2,
            schedule="adaptive",
            transport="tcp",
            # worker 0 dies *mid-task* on rendering its second frame, with
            # the task span still open — the flight-recorder drill.
            net_die_after_frames={0: 1},
            blackbox_dir=blackbox_dir,
            n_frames=args.frames,
            width=args.width,
            height=args.height,
            grid_resolution=12,
            verify=True,
            telemetry=True,
        )
    )
    _, peak_alloc = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    if result.recovery["crashes"] < 1 or result.recovery["retries"] < 1:
        print(f"FAIL: injected worker kill not recovered: {result.recovery}")
        return 1
    if result.bit_identical is not True:
        print("FAIL: recovered TCP farm output differs from the serial reference")
        return 1

    try:
        validate_events(result.events)
    except SchemaError as exc:
        print(f"FAIL: telemetry schema drift: {exc}")
        return 1
    names = {e["name"] for e in result.events}
    missing = REQUIRED_NET_EVENTS - names
    if missing:
        print(f"FAIL: net telemetry events missing: {sorted(missing)}")
        return 1
    if "recovery" not in names:
        print("FAIL: no recovery event emitted for the killed worker")
        return 1
    orphans = find_orphan_spans(result.events)
    if orphans:
        print(f"FAIL: {len(orphans)} orphan spans in the merged kill-drill trace")
        return 1
    if len({e.get("run") for e in result.events if e.get("run")}) != 1:
        print("FAIL: kill-drill events are not stamped with a single run id")
        return 1

    # -- black-box drill: the victim's last seconds must survive it ------------
    losses = [e for e in result.events if e["name"] == "net.worker.lost"]
    loss = next((e for e in losses if e["attrs"].get("blackbox")), None)
    if loss is None:
        print(f"FAIL: no net.worker.lost event points at a black box: "
              f"{[e['attrs'] for e in losses]}")
        return 1
    box_path = Path(loss["attrs"]["blackbox"])
    if not box_path.exists():
        print(f"FAIL: loss event points at missing black box {box_path}")
        return 1
    dump = read_blackbox(box_path)
    if len(dump) < 2 or dump[0].get("type") != "blackbox":
        print(f"FAIL: black box {box_path.name} unparseable or missing meta header")
        return 1
    if dump[0]["attrs"].get("reason") != "die-after-frames":
        print(f"FAIL: black box dumped for {dump[0]['attrs'].get('reason')!r}, "
              "expected 'die-after-frames'")
        return 1
    merged, n_added = stitch_blackbox(result.events, dump)
    stitch_orphans = find_orphan_spans(merged)
    if stitch_orphans:
        print(f"FAIL: {len(stitch_orphans)} orphan spans after stitching the black box")
        return 1
    open_tasks = [
        r for r in merged
        if r.get("type") == "span" and r.get("open") and r.get("name") == "task"
    ]
    if not open_tasks:
        print("FAIL: stitched trace is missing the victim's final open task span")
        return 1
    blackbox_tmp.cleanup()

    print("OK: loopback TCP farm recovered from an injected worker kill")
    print(f"  crashes={result.recovery['crashes']} retries={result.recovery['retries']}")
    print(f"  losses={[(e['attrs']['worker'], e['attrs']['reason']) for e in losses]}")
    print("  output bit-identical to serial reference; trace has 0 orphan spans")
    print(
        f"  black box {box_path.name}: {len(dump)} records, {n_added} stitched in, "
        f"{len(open_tasks)} open task span(s) recovered, 0 orphans after stitch"
    )
    print(f"  master peak allocation {peak_alloc / (1 << 20):.1f} MiB (tracemalloc)")

    return live_status_drill(args)


if __name__ == "__main__":
    sys.exit(main())
