#!/usr/bin/env python
"""CI lint for Chrome trace-event JSON emitted into benchmarks/results/.

The benchmarks (and ``--trace-out``) promise Perfetto-loadable traces:
this validates every ``*.trace.json`` / ``trace_*.json`` under the given
paths without needing a browser.  Checks, per file:

* top-level shape: ``traceEvents`` list + ``displayTimeUnit``;
* every event has ``name``/``ph``/``pid``, and non-metadata events a
  numeric non-negative ``ts``;
* complete events (``ph: "X"``) have a non-negative ``dur``;
* every ``tid`` referenced by a span/instant has a ``thread_name``
  metadata record (the one-track-per-worker-lane contract);
* counter samples (``ph: "C"``) carry a numeric ``args.value``.

Usage::

    python tools/trace_lint.py benchmarks/results [more paths...]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GLOBS = ("*.trace.json", "trace_*.json")


def find_traces(paths: list[Path]) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        if p.is_dir():
            for pattern in GLOBS:
                out.extend(sorted(p.rglob(pattern)))
        elif p.exists():
            out.append(p)
        else:
            raise FileNotFoundError(p)
    # dedup while keeping order (a file can match both globs)
    seen: set[Path] = set()
    return [p for p in out if not (p in seen or seen.add(p))]


def lint_trace(path: Path) -> list[str]:
    """Return a list of problems (empty = clean)."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable JSON: {exc}"]
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["no traceEvents list"]
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        problems.append(f"bad displayTimeUnit {doc.get('displayTimeUnit')!r}")
    named_tids = set()
    used_tids = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not ev.get("name"):
            problems.append(f"{where}: missing name")
        if "pid" not in ev:
            problems.append(f"{where}: missing pid")
        if ph == "M":
            if ev.get("name") == "thread_name":
                named_tids.add(ev.get("tid"))
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: span with bad dur {dur!r}")
            used_tids.add(ev.get("tid"))
        elif ph == "i":
            used_tids.add(ev.get("tid"))
        elif ph == "C":
            value = (ev.get("args") or {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(f"{where}: counter without numeric args.value")
        else:
            problems.append(f"{where}: unexpected ph {ph!r}")
    unnamed = used_tids - named_tids
    if unnamed:
        problems.append(f"tids without thread_name metadata: {sorted(map(str, unnamed))}")
    return problems


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="+", type=Path,
                    help="trace files or directories to scan")
    args = ap.parse_args(argv)

    traces = find_traces(args.paths)
    if not traces:
        print(f"FAIL: no trace JSON found under {[str(p) for p in args.paths]}")
        return 1
    bad = 0
    for path in traces:
        problems = lint_trace(path)
        if problems:
            bad += 1
            print(f"FAIL: {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            n = len(json.loads(path.read_text())["traceEvents"])
            print(f"ok: {path} ({n} trace events)")
    if bad:
        print(f"{bad}/{len(traces)} trace files failed lint")
        return 1
    print(f"all {len(traces)} trace files lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
