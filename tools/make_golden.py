#!/usr/bin/env python
"""Regenerate the golden-image regression data, deterministically.

Renders the two paper workloads at the pinned 40x30 size with the seed
renderer and writes ``tests/data/golden_images.npz``.  Run this after an
*intentional* shading/intersection/texture change:

    PYTHONPATH=src python tools/make_golden.py

The render is pure numpy with no randomness, so the arrays are a
deterministic function of the scene code; only real image changes (or
numpy summation-order changes beyond the tests' 1e-6 tolerance) alter
the result.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.render import RayTracer  # noqa: E402
from repro.scenes import brick_room_scene, newton_scene  # noqa: E402

DATA = REPO / "tests" / "data" / "golden_images.npz"
W, H = 40, 30


def render(which: str) -> np.ndarray:
    scene = (
        newton_scene(width=W, height=H)
        if which == "newton"
        else brick_room_scene(width=W, height=H)
    )
    fb, _ = RayTracer(scene).render()
    return fb.as_image()


def main() -> int:
    DATA.parent.mkdir(parents=True, exist_ok=True)
    arrays = {which: render(which) for which in ("newton", "brick")}
    np.savez_compressed(DATA, **arrays)
    with np.load(DATA) as z:  # verify the archive reads back cleanly
        for which, img in arrays.items():
            np.testing.assert_array_equal(z[which], img)
    print(f"regenerated {DATA} ({DATA.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
