#!/usr/bin/env python
"""CI shard smoke: kill a shard owner mid-run, stay bit-identical.

Runs the object-space sharded renderer over the real loopback TCP farm
(``repro.shard.net``): a master that owns the camera and the wavefront
generator, two worker daemons that own scene shards and answer
``MSG_RAYS``/``MSG_SHADE`` queries — with worker 0 configured to
``os._exit`` after its sixth served ray batch.  Exits non-zero if
anything the subsystem promises drifts:

* no worker loss is recorded (the kill was swallowed), or the master's
  outbox ledger performed no replays,
* any recovered frame differs by a single bit from the serial
  single-renderer reference,
* the orphaned shards are not reassigned (the dispatch log must exceed
  one unit per shard),
* the telemetry log violates the pinned schema, or the ``shard.rays`` /
  ``shard.xfer`` events are missing.

A loss-free control run must also be bit-identical (the drill proves
replay correctness, the control proves the happy path).

Usage::

    python tools/shard_smoke.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.render import RayTracer  # noqa: E402
from repro.runtime import AnimationSpec  # noqa: E402
from repro.shard.net import render_sharded_tcp  # noqa: E402
from repro.telemetry import (  # noqa: E402
    InMemorySink,
    SchemaError,
    Telemetry,
    validate_events,
)

FRAMES, SHARDS, WORKERS = 2, 3, 2


def _serial_frames(spec: AnimationSpec, n_frames: int):
    anim = spec.build()
    out = []
    for f in range(n_frames):
        fb, _ = RayTracer(anim.scene_at(f)).render()
        out.append(fb.data)
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--width", type=int, default=72)
    ap.add_argument("--height", type=int, default=54)
    ap.add_argument("--die-after-rays", type=int, default=6)
    args = ap.parse_args(argv)

    spec = AnimationSpec.newton(n_frames=FRAMES, width=args.width, height=args.height)
    serial = _serial_frames(spec, FRAMES)

    # -- control: loss-free run, bit-identical -----------------------------
    session, outcome = render_sharded_tcp(
        spec, frames=FRAMES, shards=SHARDS, n_workers=WORKERS
    )
    if outcome.net.n_losses != 0:
        print(f"FAIL: control run lost {outcome.net.n_losses} workers")
        return 1
    for f, ref in enumerate(serial):
        if not np.array_equal(ref, session.frames[f].data):
            print(f"FAIL: control frame {f} differs from the serial reference")
            return 1

    # -- drill: kill shard owner w0 after N served ray batches -------------
    sink = InMemorySink()
    session, outcome = render_sharded_tcp(
        spec,
        frames=FRAMES,
        shards=SHARDS,
        n_workers=WORKERS,
        die_after_rays={0: args.die_after_rays},
        telemetry=Telemetry(sinks=[sink]),
    )
    if outcome.net.n_losses < 1:
        print("FAIL: injected owner kill produced no worker loss")
        return 1
    if session.n_replays < 1:
        print("FAIL: owner died but the outbox ledger replayed nothing")
        return 1
    if len(outcome.assignments) <= session.k:
        print("FAIL: orphaned shards were never reassigned")
        return 1
    for f, ref in enumerate(serial):
        if not np.array_equal(ref, session.frames[f].data):
            print(f"FAIL: post-replay frame {f} differs from the serial reference")
            return 1
    try:
        validate_events(sink.events)
    except SchemaError as exc:
        print(f"FAIL: telemetry schema drift: {exc}")
        return 1
    names = {e.get("name") for e in sink.events}
    missing = {"shard.rays", "shard.xfer"} - names
    if missing:
        print(f"FAIL: shard telemetry events missing: {sorted(missing)}")
        return 1

    routed = sum(int(st.rays_recv.sum()) for st in session.stats)
    print("OK: sharded TCP farm recovered from an injected shard-owner kill")
    print(
        f"  losses={outcome.net.n_losses} replays={session.n_replays} "
        f"dispatches={len(outcome.assignments)} (units={session.k})"
    )
    print(f"  {routed} rays routed across {SHARDS} shards on {WORKERS} workers")
    print(f"  {FRAMES} frames bit-identical to the serial reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
