#!/usr/bin/env python3
"""The glass ball in the brick room (Figures 1 and 2).

Renders the first frames of the bouncing-ball animation (Figure 1) and
produces the two change masks of Figure 2: (a) the pixels that actually
changed between frames, and (b) the pixels the frame-coherence algorithm
predicts must be recomputed — a superset, visibly larger but far smaller
than the full frame.

Run:  python examples/render_brick_room.py [--width 160] [--height 120]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.coherence import CoherentRenderer
from repro.imageio import (
    difference_mask_image,
    mask_stats,
    pixel_set_image,
    write_ppm,
    write_targa,
)
from repro.render import RayTracer
from repro.scenes import brick_room_animation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=160)
    parser.add_argument("--height", type=int, default=120)
    parser.add_argument("--out", type=Path, default=Path("brick_out"))
    args = parser.parse_args()
    args.out.mkdir(exist_ok=True)

    anim = brick_room_animation(n_frames=2, width=args.width, height=args.height)

    # --- Figure 1: the first two frames ------------------------------------
    images = []
    for f in range(2):
        fb, res = RayTracer(anim.scene_at(f)).render()
        images.append(fb.as_image())
        write_targa(args.out / f"fig1_frame{f}.tga", fb.to_uint8())
        print(f"frame {f}: {res.stats}")

    # --- Figure 2(a): actual pixel differences ------------------------------
    actual = difference_mask_image(images[0], images[1])
    write_ppm(args.out / "fig2a_actual.ppm", np.repeat(actual[:, :, None], 3, axis=2))

    # --- Figure 2(b): differences as computed by the FC algorithm ----------
    renderer = CoherentRenderer(anim, grid_resolution=32)
    renderer.render_next()
    report = renderer.render_next()
    predicted = pixel_set_image(report.computed_pixels, args.width, args.height)
    write_ppm(args.out / "fig2b_predicted.ppm", np.repeat(predicted[:, :, None], 3, axis=2))

    stats = mask_stats(actual, predicted)
    print(
        f"\nFigure 2 masks written to {args.out}/fig2{{a,b}}*.ppm\n"
        f"  actually changed : {stats['actual']} px\n"
        f"  FC predicted     : {stats['predicted']} px "
        f"({stats['fraction_of_frame'] * 100:.1f}% of the frame)\n"
        f"  missed           : {stats['missed']} (0 = the algorithm is exact)\n"
        f"  overprediction   : {stats['overprediction']:.2f}x"
    )
    assert stats["missed"] == 0, "conservativeness violated!"


if __name__ == "__main__":
    main()
