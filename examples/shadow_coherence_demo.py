#!/usr/bin/env python3
"""The shadow-coherence extension (the paper's future work) in action.

Renders the Newton sequence with the base coherent engine and with the
shadow-coherent one, verifying both produce identical images while the
extension fires fewer shadow rays: pixels on static chrome marbles that
merely *reflect* the swinging end marble reuse their own cached shadow
attenuations.

Run:  python examples/shadow_coherence_demo.py [--frames 12]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.coherence import CoherentRenderer, ShadowCoherentRenderer
from repro.scenes import newton_animation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--width", type=int, default=128)
    parser.add_argument("--height", type=int, default=96)
    parser.add_argument("--grid", type=int, default=32)
    args = parser.parse_args()

    anim = newton_animation(n_frames=args.frames, width=args.width, height=args.height)
    base = CoherentRenderer(anim, grid_resolution=args.grid)
    ext = ShadowCoherentRenderer(anim, grid_resolution=args.grid)

    print(f"{'frame':>5s} {'dirty px':>9s} {'reusable':>9s} {'shadow rays':>12s} {'saved':>7s} {'identical':>10s}")
    base_shadow = ext_shadow = 0
    for f in range(anim.n_frames):
        brep = base.render_next()
        erep = ext.render_next()
        base_shadow += brep.stats.shadow
        ext_shadow += erep.stats.shadow
        same = np.array_equal(base.frame_image(), ext.frame_image())
        print(
            f"{f:>5d} {erep.n_computed:>9d} {erep.n_shadow_reusable:>9d} "
            f"{erep.stats.shadow:>6d}/{brep.stats.shadow:<5d} "
            f"{erep.shadow_rays_saved:>7d} {str(same):>10s}"
        )
        if not same:
            raise SystemExit("images diverged — extension bug!")

    saved = ext.total_shadow_rays_saved
    print(
        f"\nshadow rays: {base_shadow:,} (base) -> {ext_shadow:,} (extension); "
        f"{saved:,} saved ({saved / base_shadow:.1%}), images bit-identical"
    )


if __name__ == "__main__":
    main()
