#!/usr/bin/env python3
"""The Newton animation (Figure 5 / Table 1 workload).

Renders the cradle sequence twice — plain and with frame coherence — and
reports the ray and pixel savings the paper's Table 1 is built on.  Frame
22 (the paper's Figure 5) is written alongside the animation frames.

Run:  python examples/render_newton.py [--frames 45] [--width 160] ...
(Defaults are scaled down so the demo finishes in ~a minute; pass
``--width 320 --height 240`` for the paper's full resolution.)
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.coherence import CoherentRenderer
from repro.imageio import write_targa
from repro.render import RayTracer
from repro.scenes import newton_animation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--width", type=int, default=160)
    parser.add_argument("--height", type=int, default=120)
    parser.add_argument("--grid", type=int, default=32, help="voxel grid resolution")
    parser.add_argument("--out", type=Path, default=Path("newton_out"))
    parser.add_argument(
        "--full-compare",
        action="store_true",
        help="also render every frame from scratch to measure the speedup",
    )
    args = parser.parse_args()
    args.out.mkdir(exist_ok=True)

    anim = newton_animation(n_frames=args.frames, width=args.width, height=args.height)
    print(
        f"Newton animation: {args.frames} frames at {args.width}x{args.height} "
        f"(1 plane, 5 spheres, 16 cylinders)"
    )

    # --- coherent render -------------------------------------------------
    renderer = CoherentRenderer(anim, grid_resolution=args.grid)
    t0 = time.perf_counter()
    coherent_rays = 0
    for f in range(anim.n_frames):
        report = renderer.render_next()
        coherent_rays += report.stats.total
        write_targa(args.out / f"newton{f:03d}.tga", renderer.frame_image())
        print(
            f"  frame {f:3d}: {report.n_computed:6d}/{args.width * args.height} px "
            f"recomputed, {report.stats.total:8d} rays, "
            f"{report.n_changed_voxels:5d} changed voxels"
        )
    coherent_time = time.perf_counter() - t0
    print(f"coherent total: {coherent_rays:,} rays in {coherent_time:.1f}s")

    # --- Figure 5: frame 22 (if the run is long enough) -------------------
    fig5_frame = min(22, anim.n_frames - 1)
    fb, res = RayTracer(anim.scene_at(fig5_frame)).render()
    write_targa(args.out / f"fig5_frame{fig5_frame}.tga", fb.to_uint8())
    print(f"Figure 5 (frame {fig5_frame}) written; rays: {res.stats.as_dict()}")

    # --- optional: full re-render comparison (Table 1 columns 1 vs 2) -----
    if args.full_compare:
        t0 = time.perf_counter()
        full_rays = 0
        for f in range(anim.n_frames):
            _, res = RayTracer(anim.scene_at(f)).render()
            full_rays += res.stats.total
        full_time = time.perf_counter() - t0
        print(
            f"\nno-coherence total: {full_rays:,} rays in {full_time:.1f}s\n"
            f"ray reduction : {full_rays / coherent_rays:.2f}x (paper: 5x)\n"
            f"time reduction: {full_time / coherent_time:.2f}x (paper: ~2.9x, on 1998 SGIs)"
        )


if __name__ == "__main__":
    main()
