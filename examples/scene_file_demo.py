#!/usr/bin/env python3
"""Scene description files: write a POV-like scene, parse it, render it.

The paper's renderer extends POV-Ray, whose scenes are plain text — each
PVM slave re-parsed the scene locally.  This demo round-trips a scene
through the library's scene-description dialect.

Run:  python examples/scene_file_demo.py [--out demo.tga]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.imageio import write_targa
from repro.render import RayTracer
from repro.scene import load_scene

SCENE_TEXT = """
// A marble pedestal under two glass spheres, brick backdrop.
camera { location <0, 2.2, -7>  look_at <0, 1.4, 0>  angle 52  width 192 height 144 }
background { rgb <0.06, 0.07, 0.12> }
global_settings { max_trace_level 5 }

light_source { <-5, 8, -6>, rgb <0.95, 0.95, 0.9> }
light_source { <4, 5, -3>, rgb <0.35, 0.35, 0.45> }

plane { <0, 1, 0>, 0
    texture { pigment { checker rgb <0.85, 0.85, 0.8> rgb <0.2, 0.25, 0.3> }
              finish { diffuse 0.8 reflection 0.06 } } }

plane { <0, 0, -1>, -9
    texture { pigment { brick color rgb <0.5, 0.2, 0.16> mortar rgb <0.7, 0.68, 0.64>
                        size <1.2, 0.4, 0.6> thickness 0.06 }
              finish { ambient 0.15 diffuse 0.8 } } }

box { <-1.2, 0, -1.2>, <1.2, 0.8, 1.2>  name "pedestal"
    texture { pigment { marble rgb <0.95, 0.95, 0.95> rgb <0.3, 0.3, 0.4> scale 0.7 }
              finish { diffuse 0.7 specular 0.3 phong_size 60 } } }

sphere { <-0.55, 1.45, 0>, 0.6  name "glass_a"
    texture { pigment { rgb <0.92, 0.98, 0.92> }
              finish { ambient 0.02 diffuse 0.05 specular 0.9 phong_size 200
                       reflection 0.1 transmission 0.85 ior 1.5 } } }

sphere { <0.7, 1.3, -0.3>, 0.45  name "chrome_b"
    texture { pigment { rgb <0.9, 0.9, 0.95> }
              finish { ambient 0.05 diffuse 0.2 specular 0.8 phong_size 120
                       reflection 0.7 } } }

cylinder { <2.4, 0, 1.5>, <2.4, 2.2, 1.5>, 0.18
    texture { pigment { rgb <0.4, 0.42, 0.5> } finish { specular 0.5 reflection 0.2 } } }
"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("scene_demo.tga"))
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as d:
        scene_path = Path(d) / "demo.sdl"
        scene_path.write_text(SCENE_TEXT)
        scene = load_scene(scene_path)

    print(f"parsed {len(scene.objects)} objects, {len(scene.lights)} lights:")
    for obj in scene.objects:
        print(f"  - {type(obj).__name__:8s} {obj.name}")

    fb, res = RayTracer(scene).render(samples_per_axis=2)
    write_targa(args.out, fb.to_uint8())
    print(f"\nrendered with {res.stats}")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
