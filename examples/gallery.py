#!/usr/bin/env python3
"""Feature gallery: CSG, torus, soft shadows and adaptive antialiasing.

Builds a still-life exercising the renderer features beyond the paper's
core workload — a CSG lens and carved die, a chrome torus, an area light
with penumbrae — and renders it twice: flat (1 sample) and with POV-style
adaptive antialiasing, reporting how few pixels needed refinement.

Run:  python examples/gallery.py [--width 240] [--height 180]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from repro.geometry import Box, CSGDifference, CSGIntersection, Plane, Sphere, Torus
from repro.imageio import write_targa
from repro.lighting import PointLight
from repro.materials import Checker, Finish, Marble, Material
from repro.render import render_adaptive
from repro.scene import Camera, Scene


def build_gallery(width: int, height: int) -> Scene:
    floor = Plane.from_normal(
        (0, 1, 0),
        0.0,
        material=Material.textured(
            Checker((0.88, 0.86, 0.8), (0.25, 0.28, 0.33)),
            Finish(ambient=0.12, diffuse=0.75, reflection=0.07),
        ),
        name="floor",
    )
    lens = CSGIntersection(
        [Sphere.at((-1.6, 1.0, -0.6), 1.0), Sphere.at((-1.6, 1.0, 0.6), 1.0)],
        material=Material.glass(tint=(0.93, 0.98, 0.95)),
        name="lens",
    )
    die = CSGDifference(
        Box.from_corners((0.4, 0.0, -0.5), (1.6, 1.2, 0.7)),
        Sphere.at((1.6, 1.2, 0.7), 0.55),
        material=Material.textured(
            Marble((0.9, 0.88, 0.92), (0.35, 0.3, 0.45)).scaled(0.6),
            Finish(ambient=0.1, diffuse=0.7, specular=0.4, phong_size=70),
        ),
        name="die",
    )
    ring = Torus.at(
        (2.9, 0.35, -1.3), (0.3, 1.0, 0.2), major=0.9, minor=0.28,
        material=Material.chrome(), name="ring",
    )
    camera = Camera(
        position=(0.3, 2.4, -6.5), look_at=(0.3, 0.9, 0), fov_degrees=52,
        width=width, height=height,
    )
    return Scene(
        camera=camera,
        objects=[floor, lens, die, ring],
        lights=[
            # A soft (area) key light: penumbrae on the floor.
            PointLight(
                np.array([-4.0, 7.5, -5.0]), np.array([0.95, 0.93, 0.88]),
                radius=0.8, n_samples=12,
            ),
            PointLight(np.array([5.0, 4.0, -2.0]), np.array([0.3, 0.32, 0.4])),
        ],
        background=np.array([0.07, 0.09, 0.16]),
        max_depth=6,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=240)
    parser.add_argument("--height", type=int, default=180)
    parser.add_argument("--threshold", type=float, default=0.12)
    parser.add_argument("--out", type=Path, default=Path("gallery.tga"))
    args = parser.parse_args()

    scene = build_gallery(args.width, args.height)
    print(f"gallery scene: {len(scene.objects)} objects, soft key light")

    t0 = time.perf_counter()
    result = render_adaptive(scene, threshold=args.threshold, samples_per_axis=3)
    dt = time.perf_counter() - t0
    n_px = args.width * args.height
    print(
        f"adaptive AA: refined {result.n_refined}/{n_px} pixels "
        f"({result.n_refined / n_px:.1%}) in {dt:.1f}s — {result.stats}"
    )
    write_targa(args.out, result.framebuffer.to_uint8())
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
