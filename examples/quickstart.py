#!/usr/bin/env python3
"""Quickstart: build a scene, ray trace it, render a short animation with
frame coherence, and write Targa images.

Run:  python examples/quickstart.py [--width 160] [--height 120] [--out out/]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro import (
    Camera,
    CoherentRenderer,
    FunctionAnimation,
    Material,
    Plane,
    PointLight,
    RayTracer,
    Scene,
    Sphere,
    Transform,
)
from repro.materials import Checker
from repro.imageio import write_targa


def build_scene(width: int, height: int) -> Scene:
    """A floor, a chrome ball, a glass ball and one light."""
    camera = Camera(
        position=(0, 2.0, -6.5), look_at=(0, 1, 0), fov_degrees=55, width=width, height=height
    )
    floor = Plane.from_normal(
        (0, 1, 0),
        0.0,
        material=Material.textured(Checker((0.9, 0.9, 0.9), (0.15, 0.15, 0.2))),
        name="floor",
    )
    chrome = Sphere.at((-1.0, 1.0, 0.5), 1.0, material=Material.chrome(), name="chrome")
    glass = Sphere.at((1.3, 0.7, -1.0), 0.7, material=Material.glass(), name="glass")
    return Scene(
        camera=camera,
        objects=[floor, chrome, glass],
        lights=[PointLight(np.array([4.0, 7.0, -4.0]), np.array([1.0, 1.0, 1.0]))],
        background=np.array([0.15, 0.25, 0.45]),
        max_depth=5,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=160)
    parser.add_argument("--height", type=int, default=120)
    parser.add_argument("--frames", type=int, default=8)
    parser.add_argument("--out", type=Path, default=Path("quickstart_out"))
    args = parser.parse_args()
    args.out.mkdir(exist_ok=True)

    # --- 1. render a single frame -------------------------------------------
    scene = build_scene(args.width, args.height)
    tracer = RayTracer(scene)
    framebuffer, result = tracer.render(samples_per_axis=2)
    write_targa(args.out / "still.tga", framebuffer.to_uint8())
    print(f"single frame: {result.stats}")
    print(f"wrote {args.out / 'still.tga'}")

    # --- 2. animate the glass ball and render with frame coherence ----------
    animation = FunctionAnimation(
        scene,
        n_frames=args.frames,
        motions={
            "glass": lambda f: Transform.translate(
                0.0, 0.9 * abs(np.sin(f * 0.55)), 0.0
            )
        },
    )
    renderer = CoherentRenderer(animation, grid_resolution=24)
    total_rays, saved_pixels = 0, 0
    for f in range(animation.n_frames):
        report = renderer.render_next()
        total_rays += report.stats.total
        saved_pixels += report.n_copied
        write_targa(args.out / f"anim{f:03d}.tga", renderer.frame_image())
        print(
            f"frame {f}: recomputed {report.n_computed:5d} px, "
            f"copied {report.n_copied:5d} px, {report.stats.total:7d} rays"
        )
    print(f"\nanimation total: {total_rays} rays; {saved_pixels} pixel-renders avoided")
    print(f"frames written to {args.out}/anim*.tga")


if __name__ == "__main__":
    main()
