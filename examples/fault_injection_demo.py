#!/usr/bin/env python3
"""Fault-injection drill for the supervised render farm.

The paper's NOW was built from colleagues' desktops — machines that crash,
hang and return garbage.  This demo renders the Newton animation on the
real local farm while a :class:`FaultPlan` deterministically kills two
worker processes, stalls a third task past its deadline and NaN-corrupts a
fourth — then verifies the assembled frames are *bit-identical* to a
fault-free serial reference.  A second act interrupts a spooled render and
resumes it, re-executing only the unfinished tasks.

Run:  python examples/fault_injection_demo.py [--frames 3]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runtime import (  # noqa: E402
    AnimationSpec,
    FaultPlan,
    LocalRenderFarm,
    SupervisorError,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=3)
    parser.add_argument("--width", type=int, default=64)
    parser.add_argument("--height", type=int, default=48)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    spec = AnimationSpec.newton(
        n_frames=args.frames, width=args.width, height=args.height
    )
    grid = 16

    print("reference: one coherent renderer, no parallelism, no faults...")
    reference = LocalRenderFarm(
        spec, mode="frame", executor="serial", grid_resolution=grid
    ).render_reference()

    # -- act 1: crash, hang, corrupt --------------------------------------------
    plan = FaultPlan(
        (
            FaultPlan.crash(1),  # worker dies mid-task (os._exit), pool rebuilds
            FaultPlan.crash(5),  # ...and a second one, later
            FaultPlan.hang(3, attempts=(0, 1, 2), hang_seconds=30.0),  # stalls past the deadline
            FaultPlan.corrupting(7, attempts=(0, 1)),  # returns NaN pixels, twice
        )
    )
    farm = LocalRenderFarm(
        spec,
        n_workers=args.workers,
        mode="frame",
        executor="process",
        grid_resolution=grid,
        fault_plan=plan,
        task_timeout=5.0,
    )
    print(f"\nrendering {farm._anim.n_frames} frames with 2 crashes, "
          "1 hang and 1 corrupted block planned...")
    t0 = time.perf_counter()
    result = farm.render()
    dt = time.perf_counter() - t0
    identical = np.array_equal(result.frames, reference.frames)
    print(f"done in {dt:.1f}s: {result.n_tasks} tasks, "
          f"{result.n_retries} retries, {result.n_timeouts} timeouts, "
          f"{result.n_crashes} crash events, {result.n_invalid} rejected results")
    print(f"bit-identical to fault-free reference: {identical}")
    assert identical

    # -- act 2: interrupt and resume --------------------------------------------
    with tempfile.TemporaryDirectory() as d:
        run_dir = Path(d) / "run"
        # Poison two tasks so the first render fails partway with its
        # completed work spooled to run_dir.
        poison = FaultPlan(
            tuple(
                FaultPlan.raising(i, attempts=tuple(range(6))) for i in (6, 9)
            )
        )
        doomed = LocalRenderFarm(
            spec,
            n_workers=args.workers,
            mode="frame",
            executor="process",
            grid_resolution=grid,
            fault_plan=poison,
            max_attempts=2,
            degrade_serial=False,
        )
        print("\ninterrupting a spooled render (two tasks poisoned)...")
        try:
            doomed.render(run_dir=run_dir)
        except SupervisorError as exc:
            print(f"render failed as planned: {exc}")
        spooled = len(list(run_dir.glob("task_*.npz")))
        print(f"{spooled}/{result.n_tasks} tasks survive in {run_dir.name}/")

        resumed = LocalRenderFarm(
            spec,
            n_workers=args.workers,
            mode="frame",
            executor="process",
            grid_resolution=grid,
        ).render(resume=run_dir)
        re_executed = {a.task_index for a in resumed.attempts}
        identical = np.array_equal(resumed.frames, reference.frames)
        print(f"resumed: {resumed.n_from_checkpoint} tasks from checkpoint, "
              f"{len(re_executed)} re-executed")
        print(f"bit-identical to fault-free reference: {identical}")
        assert identical


if __name__ == "__main__":
    main()
