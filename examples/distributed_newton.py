#!/usr/bin/env python3
"""Distributed rendering, both for real and on the simulated 1998 testbed.

Part 1 renders the Newton animation with *actual* parallel worker
processes on this machine, in both of the paper's decompositions, and
verifies the assembled frames are bit-identical to a single renderer's.

Part 2 replays the same animation through the discrete-event NOW simulator
configured as the paper's testbed (two SGI Indigo² + one Indigo on shared
10 Mbit Ethernet, PVM master/slave) and prints the Table-1 strategy
comparison.

Run:  python examples/distributed_newton.py [--frames 8] [--workers 4]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.bench import Table1Settings, format_table1, run_table1
from repro.parallel import build_oracle
from repro.runtime import AnimationSpec, LocalRenderFarm


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=8)
    parser.add_argument("--width", type=int, default=96)
    parser.add_argument("--height", type=int, default=72)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    spec = AnimationSpec.newton(
        n_frames=args.frames, width=args.width, height=args.height
    )

    # --- Part 1: real multiprocessing master/worker -------------------------
    print("=== real parallel rendering (this machine) ===")
    reference = LocalRenderFarm(spec, executor="serial").render_reference()
    for mode in ("frame", "sequence"):
        farm = LocalRenderFarm(
            spec, n_workers=args.workers, mode=mode, executor="process"
        )
        t0 = time.perf_counter()
        result = farm.render()
        dt = time.perf_counter() - t0
        identical = np.array_equal(result.frames, reference.frames)
        print(
            f"{mode:>8s} division: {result.n_tasks:3d} tasks on {args.workers} workers, "
            f"{dt:5.1f}s, rays={result.stats.total:,}, "
            f"bit-identical to reference: {identical}"
        )
        if not identical:
            raise SystemExit("partitioned render diverged from the reference!")

    # --- Part 2: the simulated 1998 NOW ---------------------------------------
    print("\n=== simulated NCSU testbed (Table 1 regeneration) ===")
    print("measuring per-pixel costs (renders the animation twice)...")
    oracle = build_oracle(spec.build(), grid_resolution=24)
    result = run_table1(oracle, Table1Settings())
    print(format_table1(result))


if __name__ == "__main__":
    main()
