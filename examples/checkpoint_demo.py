#!/usr/bin/env python3
"""Checkpoint/restore of a coherent render mid-sequence.

Renders the first half of the Newton animation, serializes the coherence
state (framebuffer + voxel pixel lists + position) to disk, constructs a
brand-new renderer from the checkpoint and finishes the sequence — then
verifies the result is bit-identical to an uninterrupted run.  On a render
farm this is the difference between losing a machine-night and losing
one frame's worth of work.

Run:  python examples/checkpoint_demo.py [--frames 10]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.coherence import CoherentRenderer, load_checkpoint, save_checkpoint
from repro.scenes import newton_animation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=10)
    parser.add_argument("--width", type=int, default=96)
    parser.add_argument("--height", type=int, default=72)
    args = parser.parse_args()

    anim = newton_animation(n_frames=args.frames, width=args.width, height=args.height)
    half = args.frames // 2

    # Uninterrupted reference.
    ref = CoherentRenderer(anim, grid_resolution=24)
    ref_frames = []
    for _ in range(args.frames):
        ref.render_next()
        ref_frames.append(ref.frame_image())

    # Interrupted run.
    first = CoherentRenderer(anim, grid_resolution=24)
    for _ in range(half):
        first.render_next()
    with tempfile.TemporaryDirectory() as d:
        ckpt = Path(d) / "render.ckpt.npz"
        save_checkpoint(first, ckpt)
        size_kb = ckpt.stat().st_size / 1024
        print(f"checkpointed after frame {half - 1}: {size_kb:.0f} KiB "
              f"({first.pixel_map.n_entries:,} pixel-list marks)")
        del first

        resumed = load_checkpoint(anim, ckpt)
        print(f"restored; {resumed.frames_remaining} frames remaining")
        for f in range(half, args.frames):
            report = resumed.render_next()
            identical = np.array_equal(resumed.frame_image(), ref_frames[f])
            print(
                f"frame {f}: {report.n_computed:5d} px recomputed "
                f"(coherence chain intact), identical to reference: {identical}"
            )
            if not identical:
                raise SystemExit("resumed render diverged!")
    print("\nresume continued the coherence chain bit-exactly — no full-frame restart paid")


if __name__ == "__main__":
    main()
