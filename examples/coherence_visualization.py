#!/usr/bin/env python3
"""Visualize frame coherence: per-frame recompute masks over an animation.

For every frame of the Newton sequence this writes a side-by-side strip:
the rendered frame | the predicted recompute mask (white = re-traced) |
the actual change mask.  Watching the strips makes the algorithm's
behaviour obvious: the mask hugs the swinging end marbles, their strings,
their reflections in the other marbles and their shadows on the floor.

Run:  python examples/coherence_visualization.py [--frames 8]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.coherence import CoherentRenderer
from repro.imageio import difference_mask_image, pixel_set_image, write_ppm
from repro.scenes import newton_animation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=8)
    parser.add_argument("--width", type=int, default=128)
    parser.add_argument("--height", type=int, default=96)
    parser.add_argument("--out", type=Path, default=Path("coherence_out"))
    args = parser.parse_args()
    args.out.mkdir(exist_ok=True)

    anim = newton_animation(n_frames=args.frames, width=args.width, height=args.height)
    renderer = CoherentRenderer(anim, grid_resolution=32)

    prev_image = None
    for f in range(anim.n_frames):
        report = renderer.render_next()
        image = renderer.frame_image()

        predicted = pixel_set_image(report.computed_pixels, args.width, args.height)
        if prev_image is not None:
            actual = difference_mask_image(prev_image, image)
        else:
            actual = np.full((args.height, args.width), 255, dtype=np.uint8)

        strip = np.concatenate(
            [
                (np.clip(image, 0, 1) * 255).astype(np.uint8),
                np.repeat(predicted[:, :, None], 3, axis=2),
                np.repeat(actual[:, :, None], 3, axis=2),
            ],
            axis=1,
        )
        write_ppm(args.out / f"strip{f:03d}.ppm", strip)
        frac = report.n_computed / (args.width * args.height)
        print(
            f"frame {f:3d}: recomputed {report.n_computed:6d} px ({frac:6.1%}), "
            f"{report.n_changed_voxels:4d} changed voxels, map={report.map_entries:,} marks"
        )
        prev_image = image

    print(f"\nstrips written to {args.out}/strip*.ppm  (render | predicted | actual)")


if __name__ == "__main__":
    main()
