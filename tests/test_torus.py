"""Tests for the torus primitive and the batched quartic solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import MISS, Torus, solve_quartic_batch
from repro.rmath import normalize


def _shoot(obj, origin, direction):
    o = np.asarray(origin, dtype=float)[None]
    d = normalize(np.asarray(direction, dtype=float))[None]
    t, n = obj.intersect(o, d)
    return float(t[0]), n[0]


# -- quartic solver ------------------------------------------------------------
def test_quartic_known_roots():
    # (t-1)(t-2)(t-3)(t-4) = t^4 -10t^3 +35t^2 -50t +24
    roots = solve_quartic_batch(np.array([[-10.0, 35.0, -50.0, 24.0]]))
    got = np.sort(roots[0])
    np.testing.assert_allclose(got, [1, 2, 3, 4], atol=1e-8)


def test_quartic_complex_pairs_nan():
    # (t^2+1)(t^2+4): no real roots.
    roots = solve_quartic_batch(np.array([[0.0, 5.0, 0.0, 4.0]]))
    assert np.all(np.isnan(roots[0]))


def test_quartic_mixed():
    # (t^2+1)(t-1)(t+2) = t^4 + t^3 - t^2 + t - 2
    roots = solve_quartic_batch(np.array([[1.0, -1.0, 1.0, -2.0]]))
    real = np.sort(roots[0][~np.isnan(roots[0])])
    np.testing.assert_allclose(real, [-2.0, 1.0], atol=1e-8)


def test_quartic_empty_batch():
    assert solve_quartic_batch(np.empty((0, 4))).shape == (0, 4)


@given(
    r1=st.floats(-3, 3), r2=st.floats(-3, 3), r3=st.floats(-3, 3), r4=st.floats(-3, 3)
)
@settings(max_examples=60)
def test_quartic_recovers_constructed_roots(r1, r2, r3, r4):
    rs = sorted([r1, r2, r3, r4])
    # Skip near-degenerate clusters where root separation is ill-conditioned.
    if min(b - a for a, b in zip(rs, rs[1:])) < 0.1:
        return
    poly = np.poly(rs)  # leading 1
    roots = solve_quartic_batch(poly[None, 1:])
    got = np.sort(roots[0])
    np.testing.assert_allclose(got, rs, atol=1e-5)


# -- torus geometry ----------------------------------------------------------------
def test_torus_outer_rim():
    t = Torus(0.25)
    tt, n = _shoot(t, (-5, 0, 0), (1, 0, 0))
    assert tt == pytest.approx(5 - 1.25, abs=1e-6)
    np.testing.assert_allclose(n, [-1, 0, 0], atol=1e-6)


def test_torus_hole():
    t = Torus(0.25)
    tt, _ = _shoot(t, (0, -5, 0), (0, 1, 0))
    assert tt == MISS


def test_torus_tube_top():
    t = Torus(0.25)
    tt, n = _shoot(t, (1, 5, 0), (0, -1, 0))
    assert tt == pytest.approx(4.75, abs=1e-6)
    np.testing.assert_allclose(n, [0, 1, 0], atol=1e-6)


def test_torus_inner_rim():
    t = Torus(0.25)
    tt, _ = _shoot(t, (0, 0, 0), (1, 0, 0))  # from the center of the hole
    assert tt == pytest.approx(0.75, abs=1e-6)


def test_torus_validation():
    with pytest.raises(ValueError):
        Torus(0.0)
    with pytest.raises(ValueError):
        Torus(1.0)
    with pytest.raises(ValueError):
        Torus.at((0, 0, 0), (0, 1, 0), 1.0, 2.0)


def test_torus_at_placement():
    t = Torus.at((5, 2, 0), (0, 0, 1), major=2.0, minor=0.5)
    # Axis along z: the ring lies in the plane z = 0 through (5, 2, 0).
    tt, _ = _shoot(t, (5 + 5, 2, 0), (-1, 0, 0))
    assert tt == pytest.approx(5 - 2.5, abs=1e-5)


def test_torus_bounds():
    b = Torus(0.25).bounds()
    np.testing.assert_allclose(b.lo, [-1.25, -0.25, -1.25])
    np.testing.assert_allclose(b.hi, [1.25, 0.25, 1.25])


@given(
    ox=st.floats(-2, 2),
    oy=st.floats(-2, 2),
    dx=st.floats(-0.5, 0.5),
    dy=st.floats(-0.5, 0.5),
)
@settings(max_examples=80, deadline=None)
def test_torus_hits_satisfy_implicit_equation(ox, oy, dx, dy):
    minor = 0.3
    t = Torus(minor)
    o = np.array([[ox, oy, -4.0]])
    d = normalize(np.array([[dx, dy, 1.0]]))
    tt, n = t.intersect(o, d)
    if np.isfinite(tt[0]):
        p = (o + tt[0] * d)[0]
        res = (p @ p + 1 - minor**2) ** 2 - 4 * (p[0] ** 2 + p[2] ** 2)
        assert abs(res) < 1e-6
        # Normal is unit and points along the gradient.
        assert np.linalg.norm(n[0]) == pytest.approx(1.0, abs=1e-9)


def test_torus_renders_in_scene():
    from repro.lighting import PointLight
    from repro.materials import Material
    from repro.render import RayTracer
    from repro.scene import Camera, Scene

    ring = Torus.at((0, 1, 0), (0, 1, 0), 1.2, 0.35, material=Material.chrome(), name="ring")
    cam = Camera(position=(0, 2.5, -5), look_at=(0, 1, 0), width=40, height=30)
    scene = Scene(
        camera=cam,
        objects=[ring],
        lights=[PointLight(np.array([3.0, 6.0, -4.0]), np.ones(3))],
        background=np.array([0.1, 0.1, 0.2]),
    )
    fb, res = RayTracer(scene).render()
    assert res.stats.reflected > 0
    assert fb.to_uint8().std() > 5


def test_torus_cost_hint_triggers_culling():
    from repro.render import SceneIntersector

    ring = Torus.at((0, 1, 0), (0, 1, 0), 1.0, 0.3)
    inter = SceneIntersector([ring])
    assert inter._cull == [True]


def test_sdl_torus():
    from repro.scene import parse_scene

    s = parse_scene(
        "camera { location <0,2,-5> look_at <0,0,0> width 8 height 6 }"
        ' torus { 1.5, 0.4 name "ring" translate <0, 1, 0> }'
    )
    assert isinstance(s.objects[0], Torus)
    assert s.objects[0].name == "ring"
    b = s.objects[0].bounds()
    np.testing.assert_allclose(b.center, [0, 1, 0], atol=1e-9)
