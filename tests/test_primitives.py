"""Intersection tests for every primitive, unit + property based."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    MISS,
    Box,
    Cylinder,
    Disc,
    Plane,
    Sphere,
    Triangle,
    TriangleMesh,
    solve_quadratic,
)
from repro.rmath import Transform, normalize

unit_dir = st.tuples(
    st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1)
).filter(lambda d: np.linalg.norm(d) > 1e-3)


def _one_ray(obj, origin, direction):
    o = np.asarray(origin, dtype=float)[None]
    d = normalize(np.asarray(direction, dtype=float))[None]
    t, n = obj.intersect(o, d)
    return float(t[0]), n[0]


# -- solve_quadratic ---------------------------------------------------------
def test_solve_quadratic_two_roots():
    valid, t0, t1 = solve_quadratic(np.array([1.0]), np.array([-3.0]), np.array([2.0]))
    assert valid[0]
    assert t0[0] == pytest.approx(1.0) and t1[0] == pytest.approx(2.0)


def test_solve_quadratic_no_real_roots():
    valid, t0, t1 = solve_quadratic(np.array([1.0]), np.array([0.0]), np.array([1.0]))
    assert not valid[0]
    assert np.isinf(t0[0]) and np.isinf(t1[0])


def test_solve_quadratic_double_root_at_zero():
    valid, t0, t1 = solve_quadratic(np.array([1.0]), np.array([0.0]), np.array([0.0]))
    assert valid[0]
    assert t0[0] == pytest.approx(0.0) and t1[0] == pytest.approx(0.0)


@given(st.floats(-5, 5), st.floats(-5, 5))
@settings(max_examples=50)
def test_solve_quadratic_roots_satisfy_equation(b, c):
    valid, t0, t1 = solve_quadratic(np.array([1.0]), np.array([b]), np.array([c]))
    if valid[0]:
        for r in (t0[0], t1[0]):
            assert r * r + b * r + c == pytest.approx(0.0, abs=1e-6)


# -- sphere ---------------------------------------------------------------------
def test_sphere_head_on():
    s = Sphere.at((0, 0, 0), 1.0)
    t, n = _one_ray(s, (0, 0, -5), (0, 0, 1))
    assert t == pytest.approx(4.0)
    np.testing.assert_allclose(n, [0, 0, -1], atol=1e-12)


def test_sphere_miss():
    s = Sphere.at((0, 0, 0), 1.0)
    t, _ = _one_ray(s, (0, 5, -5), (0, 0, 1))
    assert t == MISS


def test_sphere_from_inside():
    s = Sphere.at((0, 0, 0), 1.0)
    t, n = _one_ray(s, (0, 0, 0), (0, 0, 1))
    assert t == pytest.approx(1.0)
    np.testing.assert_allclose(n, [0, 0, 1], atol=1e-12)


def test_sphere_behind_ray():
    s = Sphere.at((0, 0, -10), 1.0)
    t, _ = _one_ray(s, (0, 0, 0), (0, 0, 1))
    assert t == MISS


def test_sphere_invalid_radius():
    with pytest.raises(ValueError):
        Sphere.at((0, 0, 0), 0.0)


@given(
    center=st.tuples(st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5)),
    radius=st.floats(0.1, 3.0),
    d=unit_dir,
)
@settings(max_examples=80)
def test_sphere_hit_point_on_surface(center, radius, d):
    """Any reported hit lies on the sphere and the normal is radial."""
    s = Sphere.at(center, radius)
    origin = np.asarray(center) - 10.0 * normalize(np.asarray(d, dtype=float))
    t, n = _one_ray(s, origin, d)
    assert np.isfinite(t)  # aimed at the center: must hit
    p = origin + t * normalize(np.asarray(d, dtype=float))
    assert np.linalg.norm(p - center) == pytest.approx(radius, rel=1e-6)
    np.testing.assert_allclose(n, (p - center) / radius, atol=1e-6)


def test_sphere_bounds():
    s = Sphere.at((1, 2, 3), 0.5)
    b = s.bounds()
    np.testing.assert_allclose(b.lo, [0.5, 1.5, 2.5])
    np.testing.assert_allclose(b.hi, [1.5, 2.5, 3.5])


# -- plane -----------------------------------------------------------------------
def test_plane_floor_hit():
    p = Plane.from_normal((0, 1, 0), 0.0)
    t, n = _one_ray(p, (0, 2, 0), (0, -1, 0))
    assert t == pytest.approx(2.0)
    np.testing.assert_allclose(n, [0, 1, 0], atol=1e-12)


def test_plane_parallel_ray_misses():
    p = Plane.from_normal((0, 1, 0), 0.0)
    t, _ = _one_ray(p, (0, 1, 0), (1, 0, 0))
    assert t == MISS


def test_plane_offset_d():
    p = Plane.from_normal((0, 1, 0), 2.0)  # the plane y = 2
    t, _ = _one_ray(p, (0, 5, 0), (0, -1, 0))
    assert t == pytest.approx(3.0)


def test_plane_arbitrary_normal():
    n_vec = normalize(np.array([1.0, 1.0, 0.0]))
    p = Plane.from_normal(n_vec, 1.0)
    # Fire along -n from a point at distance 4 along n: hits at t = 3.
    t, n = _one_ray(p, 4.0 * n_vec, -n_vec)
    assert t == pytest.approx(3.0)
    np.testing.assert_allclose(np.abs(n @ n_vec), 1.0, atol=1e-9)


def test_plane_downward_facing():
    p = Plane.from_normal((0, -1, 0), -5.0)  # ceiling at y = 5
    t, _ = _one_ray(p, (0, 0, 0), (0, 1, 0))
    assert t == pytest.approx(5.0)


def test_plane_zero_normal_rejected():
    with pytest.raises(ValueError):
        Plane.from_normal((0, 0, 0), 0.0)


def test_plane_bounds_infinite():
    b = Plane.from_normal((0, 1, 0), 0.0).bounds()
    assert not np.all(np.isfinite(b.lo)) or not np.all(np.isfinite(b.hi))


# -- cylinder ----------------------------------------------------------------------
def test_cylinder_side_hit():
    c = Cylinder.from_endpoints((0, 0, 0), (0, 2, 0), 1.0)
    t, n = _one_ray(c, (-5, 1, 0), (1, 0, 0))
    assert t == pytest.approx(4.0)
    np.testing.assert_allclose(n, [-1, 0, 0], atol=1e-9)


def test_cylinder_cap_hit():
    c = Cylinder.from_endpoints((0, 0, 0), (0, 2, 0), 1.0)
    t, n = _one_ray(c, (0, 5, 0), (0, -1, 0))
    assert t == pytest.approx(3.0)
    np.testing.assert_allclose(n, [0, 1, 0], atol=1e-9)


def test_cylinder_miss_beyond_height():
    c = Cylinder.from_endpoints((0, 0, 0), (0, 2, 0), 1.0)
    t, _ = _one_ray(c, (-5, 3, 0), (1, 0, 0))
    assert t == MISS


def test_cylinder_diagonal_axis():
    c = Cylinder.from_endpoints((0, 0, 0), (2, 2, 0), 0.25)
    mid = np.array([1.0, 1.0, 0.0])
    t, _ = _one_ray(c, mid + np.array([0, 0, -5.0]), (0, 0, 1))
    assert t == pytest.approx(5.0 - 0.25, rel=1e-6)


def test_cylinder_inside_hits_wall():
    c = Cylinder.from_endpoints((0, 0, 0), (0, 2, 0), 1.0)
    t, _ = _one_ray(c, (0, 1, 0), (1, 0, 0))
    assert t == pytest.approx(1.0)


def test_cylinder_validation():
    with pytest.raises(ValueError):
        Cylinder.from_endpoints((0, 0, 0), (0, 0, 0), 1.0)
    with pytest.raises(ValueError):
        Cylinder.from_endpoints((0, 0, 0), (0, 1, 0), -1.0)


def test_cylinder_bounds_pieces_cover_and_tighten():
    c = Cylinder.from_endpoints((0, 0, 0), (4, 4, 0), 0.1)
    single = c.bounds()
    pieces = c.bounds_pieces(8)
    assert len(pieces) == 8
    # Pieces stay within the single box...
    for p in pieces:
        assert np.all(p.lo >= single.lo - 1e-9) and np.all(p.hi <= single.hi + 1e-9)
    # ...and their total volume is far below the loose single box.
    assert sum(p.volume for p in pieces) < 0.5 * single.volume


# -- box --------------------------------------------------------------------------
def test_box_head_on():
    b = Box.from_corners((-1, -1, -1), (1, 1, 1))
    t, n = _one_ray(b, (0, 0, -5), (0, 0, 1))
    assert t == pytest.approx(4.0)
    np.testing.assert_allclose(n, [0, 0, -1], atol=1e-12)


def test_box_from_inside():
    b = Box.from_corners((-1, -1, -1), (1, 1, 1))
    t, n = _one_ray(b, (0, 0, 0), (1, 0, 0))
    assert t == pytest.approx(1.0)
    np.testing.assert_allclose(n, [1, 0, 0], atol=1e-12)


def test_box_corner_order_normalized():
    b = Box.from_corners((1, 1, 1), (-1, -1, -1))
    t, _ = _one_ray(b, (0, 0, -5), (0, 0, 1))
    assert t == pytest.approx(4.0)


def test_box_miss():
    b = Box.from_corners((-1, -1, -1), (1, 1, 1))
    t, _ = _one_ray(b, (5, 5, -5), (0, 0, 1))
    assert t == MISS


def test_box_degenerate_rejected():
    with pytest.raises(ValueError):
        Box.from_corners((0, 0, 0), (1, 0, 1))


def test_box_rotated():
    b = Box.from_corners((-1, -1, -1), (1, 1, 1)).moved_by(Transform.rotate_y(np.pi / 4))
    # Head-on along z now hits a rotated face at sqrt(2) from origin.
    t, _ = _one_ray(b, (0, 0, -5), (0, 0, 1))
    assert t == pytest.approx(5 - np.sqrt(2), rel=1e-6)


# -- disc ------------------------------------------------------------------------
def test_disc_hit_and_miss_radius():
    d = Disc.at((0, 1, 0), (0, 1, 0), 1.0)
    t, n = _one_ray(d, (0.5, 3, 0), (0, -1, 0))
    assert t == pytest.approx(2.0)
    np.testing.assert_allclose(np.abs(n), [0, 1, 0], atol=1e-9)
    t2, _ = _one_ray(d, (1.5, 3, 0), (0, -1, 0))
    assert t2 == MISS


def test_disc_annulus_hole():
    d = Disc.at((0, 0, 0), (0, 1, 0), 2.0, inner_radius=1.0)
    t_hole, _ = _one_ray(d, (0.5, 3, 0), (0, -1, 0))
    assert t_hole == MISS
    t_ring, _ = _one_ray(d, (1.5, 3, 0), (0, -1, 0))
    assert np.isfinite(t_ring)


def test_disc_validation():
    with pytest.raises(ValueError):
        Disc.at((0, 0, 0), (0, 1, 0), -1.0)
    with pytest.raises(ValueError):
        Disc.at((0, 0, 0), (0, 1, 0), 1.0, inner_radius=1.5)


# -- triangle / mesh ----------------------------------------------------------------
def test_triangle_hit():
    tr = Triangle((0, 0, 0), (1, 0, 0), (0, 1, 0))
    t, n = _one_ray(tr, (0.25, 0.25, -3), (0, 0, 1))
    assert t == pytest.approx(3.0)
    np.testing.assert_allclose(np.abs(n), [0, 0, 1], atol=1e-12)


def test_triangle_edge_and_outside():
    tr = Triangle((0, 0, 0), (1, 0, 0), (0, 1, 0))
    t_out, _ = _one_ray(tr, (0.9, 0.9, -3), (0, 0, 1))
    assert t_out == MISS


def test_mesh_nearest_face_wins():
    # Two parallel triangles; ray must report the closer one.
    vertices = np.array(
        [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 2], [1, 0, 2], [0, 1, 2]], dtype=float
    )
    faces = np.array([[0, 1, 2], [3, 4, 5]])
    m = TriangleMesh(vertices, faces)
    t, _ = _one_ray(m, (0.2, 0.2, -1), (0, 0, 1))
    assert t == pytest.approx(1.0)


def test_mesh_validation():
    with pytest.raises(ValueError):
        TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 3]]))  # index out of range
    with pytest.raises(ValueError):
        TriangleMesh(
            np.array([[0, 0, 0], [1, 0, 0], [2, 0, 0]], dtype=float), np.array([[0, 1, 2]])
        )  # degenerate (collinear) triangle


def test_mesh_bounds():
    tr = Triangle((0, 0, 0), (1, 0, 0), (0, 1, 0))
    b = tr.bounds()
    np.testing.assert_allclose(b.lo, [0, 0, 0])
    np.testing.assert_allclose(b.hi, [1, 1, 0])


# -- shared Primitive behaviour ------------------------------------------------------
def test_with_transform_preserves_prim_id():
    s = Sphere.at((0, 0, 0), 1.0, name="ball")
    moved = s.moved_by(Transform.translate(1, 0, 0))
    assert moved.prim_id == s.prim_id
    assert moved.name == s.name
    assert moved is not s
    t, _ = _one_ray(moved, (1, 0, -5), (0, 0, 1))
    assert t == pytest.approx(4.0)


def test_prim_ids_unique():
    a = Sphere.at((0, 0, 0), 1.0)
    b = Sphere.at((0, 0, 0), 1.0)
    assert a.prim_id != b.prim_id


def test_batched_intersection_matches_scalar():
    s = Sphere.at((0.5, 0.5, 0), 1.0)
    rng = np.random.default_rng(42)
    origins = rng.uniform(-5, 5, (64, 3))
    origins[:, 2] = -6.0
    dirs = normalize(rng.uniform(-1, 1, (64, 3)) + [0, 0, 3.0])
    t_batch, n_batch = s.intersect(origins, dirs)
    for i in range(64):
        t_i, n_i = s.intersect(origins[i : i + 1], dirs[i : i + 1])
        assert t_batch[i] == pytest.approx(t_i[0], abs=1e-12) or (
            np.isinf(t_batch[i]) and np.isinf(t_i[0])
        )
        if np.isfinite(t_batch[i]):
            np.testing.assert_allclose(n_batch[i], n_i[0], atol=1e-12)
