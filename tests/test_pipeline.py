"""Tests for the high-level animation pipeline (camera cuts etc.), driven
through the unified :func:`repro.api.render` facade."""

import numpy as np
import pytest

import repro
from repro.api import RenderRequest, render
from repro.render import RayTracer
from repro.scenes import newton_animation, two_shot_animation


def run(anim, **kwargs):
    return render(RenderRequest(workload=anim, engine="animation", **kwargs))


@pytest.fixture(scope="module")
def cut_anim():
    return two_shot_animation(n_frames=6, width=48, height=36)


def test_pipeline_exact_across_camera_cut(cut_anim):
    result = run(cut_anim, grid_resolution=16)
    assert result.sequences == [(0, 3), (3, 6)]
    for f in range(cut_anim.n_frames):
        full, _ = RayTracer(cut_anim.scene_at(f)).render()
        np.testing.assert_array_equal(result.frames[f], full.as_image())


def test_pipeline_chain_restart_at_cut(cut_anim):
    result = run(cut_anim, grid_resolution=16)
    n_px = cut_anim.camera_at(0).n_pixels
    # Frames 0 and 3 are chain starts: everything computed.
    assert result.reports[0].n_computed == n_px
    assert result.reports[3].n_computed == n_px
    # Mid-sequence frames are incremental.
    assert result.reports[1].n_computed < n_px
    assert result.reports[4].n_computed < n_px


def test_pipeline_stats_merge(cut_anim):
    result = run(cut_anim, grid_resolution=16)
    assert result.stats.total == sum(r.stats.total for r in result.reports)
    assert len(result.per_sequence_stats) == 2
    assert sum(s.total for s in result.per_sequence_stats) == result.stats.total
    assert result.total_computed_pixels() + result.total_copied_pixels() == (
        cut_anim.n_frames * cut_anim.camera_at(0).n_pixels
    )


def test_pipeline_shadow_coherence_identical(cut_anim):
    base = run(cut_anim, grid_resolution=16)
    ext = run(cut_anim, grid_resolution=16, shadow_coherence=True)
    np.testing.assert_array_equal(np.asarray(base.frames), np.asarray(ext.frames))
    assert ext.stats.shadow <= base.stats.shadow


def test_pipeline_on_frame_callback():
    anim = newton_animation(n_frames=3, width=32, height=24)
    seen = []
    run(anim, grid_resolution=12,
        on_frame=lambda ev: seen.append((ev.frame, ev.image.shape)))
    assert seen == [(0, (24, 32, 3)), (1, (24, 32, 3)), (2, (24, 32, 3))]


def test_pipeline_on_tile_synthesized_whole_frame():
    # The animation engine doesn't stream wire tiles; the unified surface
    # still delivers one whole-frame tile per frame, already complete.
    anim = newton_animation(n_frames=2, width=32, height=24)
    tiles = []
    run(anim, grid_resolution=12, on_tile=tiles.append)
    assert [(t.frame, t.x0, t.y0, t.x1, t.y1) for t in tiles] == [
        (0, 0, 0, 32, 24),
        (1, 0, 0, 32, 24),
    ]
    assert all(t.frame_complete and t.pixels.shape == (24, 32, 3) for t in tiles)


def test_pipeline_supersampling():
    anim = newton_animation(n_frames=2, width=32, height=24)
    result = run(anim, grid_resolution=12, samples_per_axis=2)
    full, _ = RayTracer(anim.scene_at(1)).render(samples_per_axis=2)
    np.testing.assert_array_equal(result.frames[1], full.as_image())
    with pytest.raises(ValueError):
        run(anim, shadow_coherence=True, samples_per_axis=2)


def test_render_animation_shim_removed():
    """The deprecated entry point's removal timeline has elapsed: neither
    the package root nor the pipeline module may still export it."""
    import repro.pipeline

    assert not hasattr(repro, "render_animation")
    assert not hasattr(repro.pipeline, "render_animation")
    assert "render_animation" not in repro.__all__
