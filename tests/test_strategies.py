"""Tests for the simulated Table-1 rendering strategies."""

import pytest

from repro.cluster import ThrashModel, ncsu_testbed
from repro.parallel import (
    RenderFarmConfig,
    simulate_frame_division_fc,
    simulate_frame_division_nofc,
    simulate_hybrid_fc,
    simulate_sequence_division_fc,
    simulate_sequence_division_nofc,
    simulate_single_processor,
)

SPU = 1e-4
NO_THRASH = ThrashModel(alpha=0.0)


@pytest.fixture(scope="module")
def machines():
    return ncsu_testbed()


@pytest.fixture(scope="module")
def cfg():
    return RenderFarmConfig()


def _single(oracle, machines, cfg, fc=False):
    return simulate_single_processor(
        oracle, machines[0], cfg, use_coherence=fc, sec_per_work_unit=SPU, thrash=NO_THRASH
    )


# -- single processor ------------------------------------------------------------
def test_single_ray_count_is_full_cost(tiny_oracle, machines, cfg):
    out = _single(tiny_oracle, machines, cfg)
    assert out.total_rays == tiny_oracle.total_full_rays()
    assert out.n_frames == tiny_oracle.n_frames
    assert out.first_frame_time is not None
    assert len(out.frame_completion_times) == tiny_oracle.n_frames


def test_single_fc_ray_count_is_chain_cost(tiny_oracle, machines, cfg):
    out = _single(tiny_oracle, machines, cfg, fc=True)
    assert out.total_rays == tiny_oracle.total_coherent_rays()
    assert out.n_chain_starts == 1


def test_fc_faster_than_full(tiny_oracle, machines, cfg):
    base = _single(tiny_oracle, machines, cfg)
    fc = _single(tiny_oracle, machines, cfg, fc=True)
    assert fc.total_time < base.total_time
    assert fc.speedup_vs(base) > 1.0


def test_single_frame_times_monotonic(tiny_oracle, machines, cfg):
    out = _single(tiny_oracle, machines, cfg)
    times = [out.frame_completion_times[f] for f in range(out.n_frames)]
    assert all(b > a for a, b in zip(times, times[1:]))


def test_fc_first_frame_overhead(tiny_oracle, machines, cfg):
    """The FC first frame costs more than the plain first frame (the paper's
    12% overhead) but far less than double."""
    base = _single(tiny_oracle, machines, cfg)
    fc = _single(tiny_oracle, machines, cfg, fc=True)
    assert fc.first_frame_time > base.first_frame_time
    assert fc.first_frame_time < 1.6 * base.first_frame_time


# -- distributed, no coherence ------------------------------------------------------
def test_frame_division_nofc_speedup(tiny_oracle, machines, cfg):
    base = _single(tiny_oracle, machines, cfg)
    dist = simulate_frame_division_nofc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    assert dist.total_rays == tiny_oracle.total_full_rays()
    # Aggregate speed is 4 vs the fast machine's 2: expect close to 2x.
    assert 1.5 < dist.speedup_vs(base) <= 2.2
    assert dist.n_messages > 0
    assert len(dist.frame_completion_times) == tiny_oracle.n_frames


def test_frame_division_nofc_single_machine(tiny_oracle, machines, cfg):
    solo = simulate_frame_division_nofc(
        tiny_oracle, machines[:1], cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    assert solo.total_rays == tiny_oracle.total_full_rays()


# -- sequence division + FC -----------------------------------------------------------
def test_sequence_division_fc(tiny_oracle, machines, cfg):
    out = simulate_sequence_division_fc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    # One chain start per initial subsequence (plus any steals).
    assert out.n_chain_starts >= min(len(machines), tiny_oracle.n_frames)
    # Extra chain starts inflate rays above the single-chain count.
    assert out.total_rays > tiny_oracle.total_coherent_rays()
    assert len(out.frame_completion_times) == tiny_oracle.n_frames
    # On a 5-frame animation the 3 chain-start full renders eat much of the
    # coherence gain, so only assert dominance over the plain baseline here;
    # the 45-frame benchmark asserts the full Table-1 ordering.
    base = _single(tiny_oracle, machines, cfg)
    assert out.total_time < base.total_time


def test_sequence_division_nofc(tiny_oracle, machines, cfg):
    out = simulate_sequence_division_nofc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    assert out.total_rays == tiny_oracle.total_full_rays()


# -- frame division + FC ---------------------------------------------------------------
def test_frame_division_fc_ray_identity(tiny_oracle, machines, cfg):
    """Without steals, per-block chains fire exactly the same rays as one
    full-frame chain (the pixel-level decomposition identity)."""
    out = simulate_frame_division_fc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    if out.n_steals == 0:
        assert out.total_rays == tiny_oracle.total_coherent_rays()
    else:
        assert out.total_rays >= tiny_oracle.total_coherent_rays()
    assert len(out.frame_completion_times) == tiny_oracle.n_frames


def test_frame_division_fc_beats_everything(tiny_oracle, machines, cfg):
    base = _single(tiny_oracle, machines, cfg)
    fdiv = simulate_frame_division_fc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    fc = _single(tiny_oracle, machines, cfg, fc=True)
    dist = simulate_frame_division_nofc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    assert fdiv.total_time < fc.total_time
    assert fdiv.total_time < dist.total_time
    assert fdiv.speedup_vs(base) > max(fc.speedup_vs(base), dist.speedup_vs(base))


# -- hybrid ------------------------------------------------------------------------------
def test_hybrid_fc(tiny_oracle, machines, cfg):
    out = simulate_hybrid_fc(
        tiny_oracle, machines, cfg, frames_per_chunk=2, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    # Chunked chains restart more often -> more rays than pure frame division.
    pure = simulate_frame_division_fc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    assert out.total_rays >= pure.total_rays
    assert len(out.frame_completion_times) == tiny_oracle.n_frames
    with pytest.raises(ValueError):
        simulate_hybrid_fc(tiny_oracle, machines, cfg, frames_per_chunk=0)


# -- cross-cutting properties ----------------------------------------------------------
def test_memory_pressure_slows_sequence_division(tiny_oracle, machines, cfg):
    free = simulate_sequence_division_fc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    # Make a full-frame chain exceed the slaves' 32 MB.
    big_cfg = RenderFarmConfig(
        pixel_scale=(320 * 240) / tiny_oracle.n_pixels,
    )
    pressured = simulate_sequence_division_fc(
        tiny_oracle,
        machines,
        big_cfg,
        sec_per_work_unit=SPU,
        thrash=ThrashModel(alpha=0.5, exponent=1.0),
    )
    assert pressured.total_time > free.total_time


def test_ethernet_traffic_accounted(tiny_oracle, machines, cfg):
    out = simulate_frame_division_nofc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    assert out.bytes_on_wire > 0
    assert out.ethernet_busy_seconds > 0
    assert out.ethernet_busy_seconds < out.total_time


def test_machine_busy_accounting(tiny_oracle, machines, cfg):
    out = simulate_frame_division_nofc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    busy = out.machine_busy_seconds
    assert set(busy) == {m.name for m in machines}
    assert all(v > 0 for v in busy.values())
    # Busy time cannot exceed wall clock.
    assert max(busy.values()) <= out.total_time + 1e-9


def test_deterministic_simulation(tiny_oracle, machines, cfg):
    a = simulate_frame_division_fc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    b = simulate_frame_division_fc(
        tiny_oracle, machines, cfg, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    assert a.total_time == b.total_time
    assert a.total_rays == b.total_rays
    assert a.frame_completion_times == b.frame_completion_times
