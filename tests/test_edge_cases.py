"""Edge-case tests across modules (gaps the main suites skip)."""

import numpy as np

from repro.geometry import RayBatch, Sphere
from repro.imageio import read_targa, write_targa
from repro.render import Framebuffer, RayTracer
from repro.rmath import lerp, vec3
from repro.scene import Camera, Scene


def test_lerp_batched_t():
    a = np.zeros((3, 3))
    b = np.ones((3, 3))
    t = np.array([0.0, 0.5, 1.0])
    out = lerp(a, b, t)
    np.testing.assert_allclose(out[0], 0.0)
    np.testing.assert_allclose(out[1], 0.5)
    np.testing.assert_allclose(out[2], 1.0)


def test_camera_empty_pixel_set():
    cam = Camera(position=(0, 0, -5), look_at=(0, 0, 0), width=8, height=6)
    batch = cam.rays_for_pixels(np.empty(0, dtype=np.int64))
    assert len(batch) == 0


def test_tracer_empty_pixel_set(simple_scene):
    res = RayTracer(simple_scene).trace_pixels(np.empty(0, dtype=np.int64))
    assert res.pixel_ids.size == 0
    assert res.stats.total == 0
    assert res.colors.shape == (0, 3)


def test_tracer_duplicate_pixel_ids_deduplicated(simple_scene):
    res = RayTracer(simple_scene).trace_pixels(np.array([5, 5, 5, 9]))
    np.testing.assert_array_equal(res.pixel_ids, [5, 9])
    assert res.stats.camera == 2


def test_scene_add_chaining(simple_scene):
    from repro.lighting import PointLight

    extra = Sphere.at((9, 9, 9), 0.1, material=None, name="far")
    out = simple_scene.add(extra).add_light(PointLight(np.zeros(3), np.ones(3)))
    assert out is simple_scene
    assert simple_scene.object_by_name("far") is extra


def test_framebuffer_gather_empty():
    fb = Framebuffer(4, 4)
    assert fb.gather(np.empty(0, dtype=np.int64)).shape == (0, 3)
    fb.scatter(np.empty(0, dtype=np.int64), np.empty((0, 3)))  # no-op, no raise


def test_targa_top_origin_flag(tmp_path):
    """A TGA with the top-origin descriptor bit reads correctly."""
    img = np.arange(2 * 3 * 3, dtype=np.uint8).reshape(2, 3, 3)
    path = tmp_path / "t.tga"
    write_targa(path, img)
    data = bytearray(path.read_bytes())
    # Flip to top-origin: set bit 5 of the descriptor and reorder rows.
    body = np.frombuffer(bytes(data[18:]), dtype=np.uint8).reshape(2, 3, 3)
    data[18:] = body[::-1].tobytes()
    data[17] |= 0x20
    path.write_bytes(bytes(data))
    np.testing.assert_array_equal(read_targa(path), img)


def test_raybatch_zero_length():
    batch = RayBatch(
        origins=np.empty((0, 3)),
        dirs=np.empty((0, 3)),
        pixel=np.empty(0, dtype=np.int64),
        weight=np.empty((0, 3)),
    )
    assert len(batch) == 0
    sub = batch.select(np.empty(0, dtype=bool))
    assert len(sub) == 0


def test_scene_max_depth_one_counts_only_primary_and_shadow(simple_scene):
    scene = Scene(
        camera=simple_scene.camera,
        objects=list(simple_scene.objects),
        lights=list(simple_scene.lights),
        max_depth=1,
    )
    _, res = RayTracer(scene).render()
    assert res.stats.reflected == 0
    assert res.stats.refracted == 0
    assert res.stats.shadow > 0


def test_frame_report_computed_fraction_zero_region():
    from repro.coherence import FrameReport
    from repro.render import RayStats

    rep = FrameReport(
        frame=0,
        n_computed=0,
        n_copied=0,
        stats=RayStats(),
        computed_pixels=np.empty(0, dtype=np.int64),
        rays_per_pixel=np.empty(0, dtype=np.int64),
        n_changed_voxels=0,
        wall_time=0.0,
    )
    assert rep.computed_fraction == 0.0


def test_vec3_helpers():
    v = vec3(1, 2, 3)
    assert v.tolist() == [1.0, 2.0, 3.0]


def test_animation_render_accessors():
    from repro.api import RenderRequest, render
    from repro.scenes import newton_animation

    anim = newton_animation(n_frames=2, width=16, height=12)
    result = render(RenderRequest(workload=anim, engine="animation", grid_resolution=8))
    assert result.n_frames == 2
    total_px = 2 * 16 * 12
    assert result.total_computed_pixels() + result.total_copied_pixels() == total_px
