"""The telemetry spine: spans, sinks, schema, report, bench, profiling."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    CORE_EVENTS,
    EVENT_SCHEMA,
    NULL,
    REQUIRED_BENCH_METRICS,
    SCHEMA_VERSION,
    InMemorySink,
    JsonlSink,
    SchemaError,
    Telemetry,
    VirtualClock,
    format_report,
    merge_profiles,
    metrics_from_events,
    profile_into,
    profile_summary,
    read_events,
    report_from_events,
    schema_of_events,
    validate_bench,
    validate_events,
    write_bench_json,
)


# -- core: spans, events, metrics ------------------------------------------------
def test_span_nesting_and_parent_ids():
    mem = InMemorySink()
    tel = Telemetry(sinks=[mem])
    with tel.span("outer", a=1):
        with tel.span("inner", b=2):
            pass
    # Inner closes (and is emitted) first.
    inner, outer = mem.events
    assert inner["name"] == "inner" and outer["name"] == "outer"
    assert outer["parent"] is None
    assert inner["parent"] == outer["span"]
    assert inner["span"] != outer["span"]


def test_span_timing_monotonic_and_contained():
    mem = InMemorySink()
    tel = Telemetry(sinks=[mem])
    with tel.span("outer"):
        with tel.span("inner"):
            sum(range(1000))
    inner, outer = mem.events
    for rec in (inner, outer):
        assert rec["dur"] >= 0.0
    # The inner span starts no earlier and ends no later than the outer one.
    assert inner["t"] >= outer["t"]
    assert inner["t"] + inner["dur"] <= outer["t"] + outer["dur"] + 1e-9


def test_span_handle_attrs_mutable_mid_span():
    mem = InMemorySink()
    tel = Telemetry(sinks=[mem])
    with tel.span("task", rays=0) as sp:
        sp.attrs["rays"] = 123
    assert mem.events[0]["attrs"]["rays"] == 123


def test_counters_accumulate_and_flush_once():
    mem = InMemorySink()
    tel = Telemetry(sinks=[mem])
    tel.counter("rays", 10)
    tel.counter("rays", 5)
    tel.counter("frames")
    assert tel.counters == {"rays": 15, "frames": 1}
    tel.flush_counters()
    recs = {r["name"]: r for r in mem.events}
    assert recs["rays"]["value"] == 15 and recs["rays"]["type"] == "counter"
    assert recs["frames"]["value"] == 1
    assert tel.counters == {}


def test_histogram_summarizes_on_flush():
    mem = InMemorySink()
    tel = Telemetry(sinks=[mem])
    for v in (3.0, 1.0, 2.0, 10.0):
        tel.histogram("task.duration", v)
    tel.flush_counters()
    (rec,) = mem.events
    assert rec["type"] == "histogram" and rec["value"] == 4
    assert rec["attrs"]["min"] == 1.0 and rec["attrs"]["max"] == 10.0
    assert rec["attrs"]["mean"] == pytest.approx(4.0)
    assert rec["attrs"]["p50"] == 3.0
    validate_events(mem.events)
    tel.close()  # second flush emits nothing new
    assert len(mem.events) == 1


def test_disabled_telemetry_emits_nothing():
    mem = InMemorySink()
    tel = Telemetry(sinks=[mem], enabled=False)
    tel.event("run.start")
    with tel.span("task") as sp:
        sp.attrs["x"] = 1  # handle still usable
    tel.counter("n")
    tel.flush_counters()
    tel.close()
    assert mem.events == []
    assert NULL.enabled is False


def test_virtual_clock_drives_span_durations():
    now = [10.0]
    tel = Telemetry(sinks=[mem := InMemorySink()], clock=VirtualClock(lambda: now[0]))
    with tel.span("task"):
        now[0] = 13.5
    rec = mem.events[0]
    assert rec["t"] == 10.0
    assert rec["dur"] == pytest.approx(3.5)


def test_absorb_round_trips_worker_events():
    worker = Telemetry(sinks=[wmem := InMemorySink()])
    worker.event("frame", frame=0, n_computed=10)
    payload = worker.serialize_events(wmem.events)
    master = Telemetry(sinks=[mmem := InMemorySink()])
    assert master.absorb(payload) == 1
    assert mmem.events[0]["attrs"] == {"frame": 0, "n_computed": 10}
    assert master.absorb("") == 0 and master.absorb(None) == 0


# -- sinks -----------------------------------------------------------------------
def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    tel = Telemetry(sinks=[JsonlSink(path)])
    tel.event("run.start", engine="test")
    with tel.span("task", rays=7):
        pass
    tel.counter("rays", 7)
    tel.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["type"] for r in lines] == ["event", "span", "counter"]
    assert lines[0]["attrs"]["engine"] == "test"
    # read_events accepts both the file and its directory.
    assert read_events(path) == lines
    assert read_events(tmp_path) == lines


# -- schema ----------------------------------------------------------------------
def test_validate_events_accepts_schema_and_rejects_drift():
    tel = Telemetry(sinks=[mem := InMemorySink()])
    tel.event("sequence", first_frame=0, last_frame=4)
    validate_events(mem.events)

    tel.event("sequence", first_frame=0)  # missing attr
    with pytest.raises(SchemaError):
        validate_events(mem.events)

    mem.events.pop()
    tel.event("sequence", first_frame=0, last_frame=4, extra=1)  # stray attr
    with pytest.raises(SchemaError):
        validate_events(mem.events)


def test_schema_of_events_and_core_coverage():
    tel = Telemetry(sinks=[mem := InMemorySink()])
    tel.event("run.start", **{k: 0 for k in EVENT_SCHEMA["run.start"]})
    tel.event("run.end", **{k: 0 for k in EVENT_SCHEMA["run.end"]})
    schema = schema_of_events(mem.events)
    assert frozenset(schema["run.start"]) == frozenset(EVENT_SCHEMA["run.start"])
    assert set(CORE_EVENTS) >= {"run.start", "run.end"}

    tel.event("run.start", engine="x")  # same name, different keys
    with pytest.raises(SchemaError):
        schema_of_events(mem.events)


# -- report ----------------------------------------------------------------------
def _sample_events() -> list[dict]:
    """A deterministic two-worker farm run, as the spine would emit it."""
    tel = Telemetry(sinks=[mem := InMemorySink()], clock=VirtualClock(lambda: 0.0))
    tel.event(
        "run.start", engine="farm", workload="newton", n_frames=2,
        width=8, height=6, n_workers=2, mode="frame",
    )
    for w, frame in (("w1", 0), ("w2", 1)):
        tel.emit_span(
            "task", 0.0, 1.0, worker=w, mode="frame", frame0=frame,
            frame1=frame + 1, region=48, rays=100, n_computed=48, attempt=0,
        )
    tel.event(
        "frame", frame=0, n_computed=48, n_copied=0, rays_camera=60,
        rays_reflected=20, rays_refracted=10, rays_shadow=10, rays_total=100,
    )
    tel.event(
        "frame", frame=1, n_computed=8, n_copied=40, rays_camera=50,
        rays_reflected=25, rays_refracted=10, rays_shadow=15, rays_total=100,
    )
    tel.event("worker", worker="w1", busy=1.0, n_tasks=1, utilization=0.5)
    tel.event("worker", worker="w2", busy=1.5, n_tasks=1, utilization=0.75)
    tel.event("recovery", kind="timeout", task=1, attempt=0, duration=0.5, worker="w2")
    tel.event(
        "run.end", wall_time=2.0, computed_pixels=56, copied_pixels=40,
        n_tasks=2, n_workers=2, rays_camera=110, rays_reflected=45,
        rays_refracted=20, rays_shadow=25, rays_total=200,
    )
    tel.counter("intersect.tests", 4242)
    tel.flush_counters()
    validate_events(mem.events)
    return mem.events


def test_report_aggregates_run():
    rep = report_from_events(_sample_events())
    assert (rep.engine, rep.workload, rep.mode) == ("farm", "newton", "frame")
    assert rep.n_frames == 2 and rep.n_workers == 2
    assert rep.rays["total"] == 200 and rep.rays["camera"] == 110
    assert rep.computed_pixels == 56 and rep.copied_pixels == 40
    assert rep.n_tasks == 2
    assert rep.per_frame[1]["n_copied"] == 40
    assert rep.recovery == {"timeout": 1}
    assert rep.counters["intersect.tests"] == 4242
    assert rep.computed_fraction == pytest.approx(56 / 96)


def test_report_survives_missing_run_end():
    events = [e for e in _sample_events() if e["name"] != "run.end"]
    rep = report_from_events(events)
    # Totals rebuilt from the per-frame rows of the crashed run.
    assert rep.rays["total"] == 200
    assert rep.computed_pixels == 56 and rep.copied_pixels == 40


GOLDEN_REPORT = """\
== telemetry report: newton [farm/frame] 2 frames @ 8x6, 2 workers ==

rays by kind
  camera                110
  reflected              45
  refracted              20
  shadow                 25
  total                 200

pixels
  computed               56  (58.3% of 96)
  copied                 40

per-worker utilization
  worker                busy(s)  tasks   util%
  w1                      1.000      1   50.0%
  w2                      1.500      1   75.0%

recovery events: 1 timeout

counters
  intersect.tests                       4,242

per-frame
  frame   computed     copied         rays
      0         48          0          100
      1          8         40          100

tasks: 2    wall time: 2.000 s"""


def test_format_report_golden():
    rep = report_from_events(_sample_events())
    assert format_report(rep, per_frame=True) == GOLDEN_REPORT


# -- bench payloads --------------------------------------------------------------
def test_bench_json_round_trip(tmp_path):
    metrics = metrics_from_events(_sample_events())
    assert set(REQUIRED_BENCH_METRICS) <= set(metrics)
    path = write_bench_json(tmp_path, "smoke", metrics)
    assert path.name == "BENCH_smoke.json"
    payload = json.loads(path.read_text())
    validate_bench(payload)
    assert payload["metrics"]["rays_total"] == 200


def test_validate_bench_rejects_drift():
    metrics = metrics_from_events(_sample_events())
    good = {"bench": "x", "schema_version": SCHEMA_VERSION, "metrics": metrics}
    validate_bench(good)
    with pytest.raises(ValueError, match="missing required keys"):
        validate_bench({**good, "metrics": {"rays_total": 1}})
    with pytest.raises(ValueError, match="schema_version"):
        validate_bench({**good, "schema_version": 99})
    with pytest.raises(ValueError, match="numeric"):
        validate_bench({**good, "metrics": {**metrics, "rays_total": "many"}})


# -- profiling -------------------------------------------------------------------
def test_profile_into_and_merge(tmp_path):
    def work():
        return sum(i * i for i in range(200))

    with profile_into(tmp_path / "a.prof"):
        work()
    with profile_into(tmp_path / "b.prof"):
        work()
    with profile_into(None):  # no-op path
        work()
    stats = merge_profiles(tmp_path)
    assert stats is not None
    summary = profile_summary(tmp_path, top=5)
    assert "2 task(s)" in summary
    assert merge_profiles(tmp_path / "empty") is None
