"""Unit tests for the supervised task scheduler and fault injection.

These use toy task functions (picklable, module-level) so every recovery
path — crash, hang, raise, corrupt, timeout false positive, retry
exhaustion, degradation — is exercised in seconds, independent of the
renderer.
"""

import time

import numpy as np
import pytest

from repro.runtime.faults import FaultInjected, FaultPlan, FaultSpec, corrupt_result
from repro.runtime.supervisor import SupervisorError, TaskSupervisor


def _double(x):
    return 2 * x


def _array_task(x):
    return (np.full(4, float(x)), int(x))


def _validate_array(task, result):
    arr = np.asarray(result[0])
    return arr.shape == (4,) and bool(np.isfinite(arr).all())


# -- basics ---------------------------------------------------------------------
@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_clean_run_all_executors(executor):
    sup = TaskSupervisor(_double, [1, 2, 3, 4, 5], executor=executor, n_workers=2)
    out = sup.run()
    assert out.results == [2, 4, 6, 8, 10]
    assert out.n_retries == 0
    assert out.n_degraded == 0
    assert {a.outcome for a in out.attempts} == {"ok"}


def test_parameter_validation():
    with pytest.raises(ValueError):
        TaskSupervisor(_double, [1], executor="nope")
    with pytest.raises(ValueError):
        TaskSupervisor(_double, [1], max_attempts=0)
    with pytest.raises(ValueError):
        TaskSupervisor(_double, [1], n_workers=0)


def test_fault_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultSpec("meteor", 0)


def test_corrupt_result_introduces_nan():
    good = (np.zeros(8), 3)
    bad = corrupt_result(good)
    assert np.isnan(bad[0]).any()
    assert not np.isnan(good[0]).any()  # original untouched
    assert bad[1] == 3


def test_completed_tasks_are_skipped():
    sup = TaskSupervisor(
        _double, [1, 2, 3], executor="serial", completed={1: "from-checkpoint"}
    )
    out = sup.run()
    assert out.results == [2, "from-checkpoint", 6]
    assert out.n_from_checkpoint == 1
    assert {a.task_index for a in out.attempts} == {0, 2}


def test_on_result_fires_once_per_task():
    seen = []
    sup = TaskSupervisor(
        _double, [1, 2, 3], executor="serial", on_result=lambda i, r: seen.append((i, r))
    )
    sup.run()
    assert sorted(seen) == [(0, 2), (1, 4), (2, 6)]


# -- raise faults ----------------------------------------------------------------
def test_raise_fault_is_retried_serial():
    plan = FaultPlan((FaultPlan.raising(1),))
    sup = TaskSupervisor(_double, [1, 2, 3], executor="serial", fault_plan=plan)
    out = sup.run()
    assert out.results == [2, 4, 6]
    assert out.n_retries == 1
    assert any(a.outcome == "error" and "FaultInjected" in a.error for a in out.attempts)


def test_raise_fault_is_retried_process():
    plan = FaultPlan((FaultPlan.raising(0),))
    sup = TaskSupervisor(_double, [1, 2, 3], executor="process", n_workers=2, fault_plan=plan)
    out = sup.run()
    assert out.results == [2, 4, 6]
    assert out.n_retries == 1


def test_fault_plan_apply_raises_inline():
    plan = FaultPlan((FaultPlan.raising(7),))
    with pytest.raises(FaultInjected):
        plan.apply_before(7, 0, disruptive_ok=False)
    plan.apply_before(7, 1, disruptive_ok=False)  # wrong attempt: no fault
    plan.apply_before(3, 0, disruptive_ok=False)  # wrong task: no fault


# -- corrupt faults + validation -------------------------------------------------
@pytest.mark.parametrize("executor", ["serial", "process"])
def test_corrupt_output_rejected_and_retried(executor):
    plan = FaultPlan((FaultPlan.corrupting(2),))
    sup = TaskSupervisor(
        _array_task,
        [1, 2, 3],
        executor=executor,
        n_workers=2,
        validate=_validate_array,
        fault_plan=plan,
    )
    out = sup.run()
    assert [r[1] for r in out.results] == [1, 2, 3]
    assert all(np.isfinite(r[0]).all() for r in out.results)
    assert out.n_invalid == 1
    assert out.n_retries == 1


# -- crash faults ----------------------------------------------------------------
def test_crash_fault_rebuilds_pool_and_recovers():
    plan = FaultPlan((FaultPlan.crash(1),))
    sup = TaskSupervisor(_double, [1, 2, 3, 4], executor="process", n_workers=2, fault_plan=plan)
    out = sup.run()
    assert out.results == [2, 4, 6, 8]
    assert out.n_crashes >= 1
    assert out.n_pool_rebuilds >= 1
    assert out.n_retries >= 1


def test_crash_fault_not_honoured_in_threads():
    # A thread worker calling os._exit would kill the master: the plan must
    # skip disruptive faults outside sandboxed processes.
    plan = FaultPlan((FaultPlan.crash(0), FaultPlan.hang(1, hang_seconds=60.0)))
    sup = TaskSupervisor(_double, [1, 2, 3], executor="thread", n_workers=2, fault_plan=plan)
    out = sup.run()
    assert out.results == [2, 4, 6]
    assert out.n_crashes == 0
    assert out.n_timeouts == 0


def test_repeated_pool_loss_is_fatal():
    plan = FaultPlan((FaultPlan.crash(0, attempts=(0, 1, 2)),))
    sup = TaskSupervisor(
        _double,
        [1, 2],
        executor="process",
        n_workers=2,
        fault_plan=plan,
        max_pool_rebuilds=1,
    )
    with pytest.raises(SupervisorError, match="pool lost"):
        sup.run()


# -- hangs, deadlines and false positives ----------------------------------------
def test_hang_fault_times_out_and_recovers():
    plan = FaultPlan((FaultPlan.hang(1, hang_seconds=60.0),))
    sup = TaskSupervisor(
        _double,
        [1, 2, 3],
        executor="process",
        n_workers=2,
        fault_plan=plan,
        task_timeout=0.75,
    )
    t0 = time.monotonic()
    out = sup.run()
    assert out.results == [2, 4, 6]
    assert out.n_timeouts >= 1
    assert out.n_retries >= 1
    assert time.monotonic() - t0 < 30.0  # the hung worker never blocks shutdown


def test_false_positive_deadline_duplicate_ignored():
    # The worker is slow, not dead: it finishes after being declared lost.
    # Exactly one completion is accepted; the other is a duplicate or the
    # accepted late arrival.
    plan = FaultPlan((FaultPlan.hang(0, hang_seconds=1.0),))
    sup = TaskSupervisor(
        _double,
        [5, 6],
        executor="process",
        n_workers=2,
        fault_plan=plan,
        task_timeout=0.4,
    )
    out = sup.run()
    assert out.results == [10, 12]
    assert out.n_timeouts >= 1
    accepted = [a for a in out.attempts if a.task_index == 0 and a.outcome.endswith("ok")]
    assert len(accepted) == 1


def test_adaptive_deadline_from_observed_durations():
    sup = TaskSupervisor(_double, [1], executor="serial", timeout_factor=3.0, timeout_margin=1.0)
    assert sup._current_timeout() is None  # no observations, no fixed timeout
    sup._durations.append(2.0)
    assert sup._current_timeout() == pytest.approx(7.0)
    sup.task_timeout = 42.0
    assert sup._current_timeout() == 42.0  # fixed deadline wins


# -- retry exhaustion and degradation --------------------------------------------
@pytest.mark.parametrize("executor", ["serial", "process"])
def test_retry_exhaustion_degrades_to_serial(executor):
    plan = FaultPlan((FaultPlan.raising(1, attempts=(0, 1)),))
    sup = TaskSupervisor(
        _double, [1, 2, 3], executor=executor, n_workers=2, fault_plan=plan, max_attempts=2
    )
    out = sup.run()
    assert out.results == [2, 4, 6]
    assert out.n_degraded == 1
    assert any(a.outcome == "degraded-ok" for a in out.attempts)


def test_degradation_disabled_raises():
    plan = FaultPlan((FaultPlan.raising(0, attempts=(0, 1)),))
    sup = TaskSupervisor(
        _double,
        [1],
        executor="serial",
        fault_plan=plan,
        max_attempts=2,
        degrade_serial=False,
    )
    with pytest.raises(SupervisorError, match="degradation is disabled"):
        sup.run()


def test_poisoned_task_fails_even_serial_fallback():
    # The fault fires on every attempt including the degraded one: the
    # supervisor must report the failure, not loop forever.
    plan = FaultPlan((FaultPlan.raising(0, attempts=tuple(range(10))),))
    sup = TaskSupervisor(_double, [1], executor="serial", fault_plan=plan, max_attempts=2)
    with pytest.raises(SupervisorError, match="serial"):
        sup.run()
