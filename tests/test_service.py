"""Tests for the persistent render service: ledger, queue, daemon, RPC.

The crash-safety contract under test, end to end:

* every intact ledger record survives any corruption of the *tail*
  (property-style: truncate and flip-a-byte at every offset of the last
  record);
* a service killed mid-job and restarted with ``resume=True`` finishes
  the job from its last spooled task, bit-identical to a crash-free run,
  and never re-renders a spooled task;
* failures retry with capped backoff and park in ``dead-letter``;
* admission control sheds the lowest-priority job with an explicit
  ``rejected`` record, never silently.
"""

import json
import shutil
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import RenderRequest
from repro.obs import fetch_status
from repro.service import (
    Job,
    JobLedger,
    JobQueue,
    RenderService,
    ServiceError,
    fold_jobs,
    replay_records,
)
from repro.service import client as svc_client
from repro.telemetry import read_events, validate_events

#: Small enough to render a job in ~a second, big enough for real tasks.
SPEC = {"workload": "newton", "n_frames": 4, "width": 48, "height": 36,
        "grid_resolution": 16}
#: The client-side submit surface takes the unified RenderRequest.
REQ = RenderRequest(**SPEC)


def make_service(state_dir, **kwargs) -> RenderService:
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("executor", "thread")
    return RenderService(state_dir, **kwargs)


# -- ledger ---------------------------------------------------------------------
def test_ledger_round_trip(tmp_path):
    path = tmp_path / "ledger.wal"
    with JobLedger(path) as led:
        led.append("submit", job="j0001", spec=SPEC, priority=2, owner="ada",
                   max_attempts=3)
        led.append("state", job="j0001", state="running", detail="attempt 1/3")
        led.append("task", job="j0001", task=0)
        led.append("task", job="j0001", task=1)
        led.append("attempt", job="j0001", attempt=1, outcome="ok",
                   duration=1.5, error="", backoff=0.0)
        led.append("state", job="j0001", state="done", detail="",
                   n_tasks=4, n_from_checkpoint=0)
    records, dropped = replay_records(path)
    assert dropped == 0
    assert [r["kind"] for r in records] == [
        "submit", "state", "task", "task", "attempt", "state"
    ]
    jobs = fold_jobs(records)
    job = jobs["j0001"]
    assert job.state == "done"
    assert job.priority == 2 and job.owner == "ada"
    assert job.tasks_done == {0, 1}
    assert job.n_tasks == 4
    assert job.n_attempts == 1 and job.attempts[0]["outcome"] == "ok"
    assert not job.recovered


def test_ledger_missing_file_is_empty(tmp_path):
    records, dropped = replay_records(tmp_path / "absent.wal")
    assert records == [] and dropped == 0


def test_fold_requeues_in_flight_jobs(tmp_path):
    path = tmp_path / "ledger.wal"
    with JobLedger(path) as led:
        led.append("submit", job="j0001", spec=SPEC, priority=0, owner="",
                   max_attempts=3)
        led.append("state", job="j0001", state="running", detail="attempt 1/3")
        led.append("task", job="j0001", task=0)
        led.append("submit", job="j0002", spec=SPEC, priority=1, owner="",
                   max_attempts=3)
        led.append("state", job="j0002", state="cancelled", detail="")
    jobs = fold_jobs(replay_records(path)[0])
    assert jobs["j0001"].state == "queued"          # back in the queue
    assert jobs["j0001"].recovered
    assert jobs["j0001"].tasks_done == {0}          # progress retained
    assert jobs["j0002"].state == "cancelled"       # terminal stays terminal
    assert not jobs["j0002"].recovered


def _intact_ledger(path):
    """A ledger whose last record is the corruption target."""
    with JobLedger(path) as led:
        led.append("submit", job="j0001", spec=SPEC, priority=1, owner="ada",
                   max_attempts=3)
        led.append("state", job="j0001", state="running", detail="attempt 1/3")
        led.append("task", job="j0001", task=0)
        led.append("task", job="j0001", task=1)
        led.append("state", job="j0001", state="done", detail="",
                   n_tasks=2, n_from_checkpoint=0)
        led.append("submit", job="j0002", spec=SPEC, priority=0, owner="bob",
                   max_attempts=3)
    raw = path.read_bytes()
    lines = raw[:-1].split(b"\n")  # strip trailing newline, split records
    return b"\n".join(lines[:-1]) + b"\n", lines[-1]


def test_torn_tail_truncation_at_every_byte_offset(tmp_path):
    """A crash mid-append loses at most the record being written.

    Every proper prefix of the final record must be dropped cleanly —
    no exception, no earlier record lost, no completed task forgotten,
    no terminal job resurrected.
    """
    path = tmp_path / "ledger.wal"
    prefix, last_line = _intact_ledger(path)
    for cut in range(len(last_line)):
        path.write_bytes(prefix + last_line[:cut])
        records, dropped = replay_records(path)
        assert dropped == (1 if cut else 0)
        jobs = fold_jobs(records)
        # j0001 finished before the torn record: nothing about it may change.
        assert jobs["j0001"].state == "done"
        assert jobs["j0001"].tasks_done == {0, 1}
        # The torn submit of j0002 is the one acceptable casualty.
        assert "j0002" not in jobs


def test_corrupt_byte_at_every_offset_drops_only_that_record(tmp_path):
    """A flipped byte anywhere in a record invalidates exactly that record."""
    path = tmp_path / "ledger.wal"
    prefix, last_line = _intact_ledger(path)
    for i in range(len(last_line)):
        flipped = bytes([last_line[i] ^ 0x5A])
        path.write_bytes(prefix + last_line[:i] + flipped + last_line[i + 1:] + b"\n")
        records, dropped = replay_records(path)
        jobs = fold_jobs(records)
        assert jobs["j0001"].state == "done"
        assert jobs["j0001"].tasks_done == {0, 1}
        if "j0002" in jobs:
            # The flip survived framing only if the record still parses
            # byte-identically — impossible for CRC-mismatched data.
            assert dropped == 0
            assert jobs["j0002"].owner == "bob"
        else:
            assert dropped == 1


# -- queue ----------------------------------------------------------------------
def _job(job_id, priority=0, submitted_at=0.0, not_before=0.0):
    return Job(job_id=job_id, spec={}, priority=priority,
               submitted_at=submitted_at, not_before=not_before)


def test_queue_pops_by_priority_then_fifo():
    q = JobQueue(capacity=8)
    for jid, prio in (("a", 0), ("b", 5), ("c", 5), ("d", 1)):
        assert q.push(_job(jid, prio)) is None
    assert [q.pop().job_id for _ in range(4)] == ["b", "c", "d", "a"]
    assert q.pop() is None


def test_queue_sheds_lowest_priority_newest_first():
    q = JobQueue(capacity=2)
    q.push(_job("old-low", 1))
    q.push(_job("high", 5))
    shed = q.push(_job("new-low", 1))
    assert shed.job_id == "new-low"  # newest among the lowest-priority ties
    shed = q.push(_job("urgent", 9))
    assert shed.job_id == "old-low"
    assert sorted(j.job_id for j in q) == ["high", "urgent"]


def test_queue_backoff_gate_skips_but_keeps_jobs():
    q = JobQueue(capacity=4)
    q.push(_job("later", priority=9, not_before=100.0))
    q.push(_job("now", priority=0))
    assert q.pop(now=50.0).job_id == "now"     # backoff never blocks the queue
    assert q.pop(now=50.0) is None
    assert q.pop(now=150.0).job_id == "later"  # gate expired


def test_queue_requeue_bypasses_capacity():
    q = JobQueue(capacity=1)
    q.push(_job("a", 5))
    q.requeue(_job("retry", 0))
    assert len(q) == 2  # an admitted job keeps its seat on retry


# -- service: happy path over the control socket --------------------------------
def test_service_renders_submitted_job_over_rpc(tmp_path):
    svc = make_service(tmp_path / "svc")
    host, port = svc.start()
    addr = f"{host}:{port}"
    try:
        job = svc_client.submit(addr, REQ, priority=3, owner="ada")
        assert job["state"] == "queued" and job["job_id"] == "j0001"
        done = svc.step()
        assert done.state == "done"
        final = svc_client.job_status(addr, "j0001")
        assert final["state"] == "done"
        assert final["n_tasks"] > 0 and final["tasks_done"] == final["n_tasks"]
        snap = svc_client.list_jobs(addr)
        assert snap["states"] == {"done": 1}
    finally:
        svc.stop()
    with np.load(tmp_path / "svc" / "jobs" / "j0001" / "frames.npz") as npz:
        frames = npz["frames"]
    assert frames.shape[0] == SPEC["n_frames"]
    # The service's own narration obeys the pinned telemetry schema.
    events = read_events(tmp_path / "svc" / "service.events.jsonl")
    validate_events(events)
    names = {e["name"] for e in events}
    assert {"job.submit", "job.state", "job.attempt"} <= names


def test_service_control_errors(tmp_path):
    svc = make_service(tmp_path / "svc")
    host, port = svc.start()
    addr = f"{host}:{port}"
    try:
        with pytest.raises(ServiceError, match="unknown job"):
            svc_client.job_status(addr, "j9999")
        job = svc_client.submit(addr, REQ)
        cancelled = svc_client.cancel(addr, job["job_id"])
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServiceError, match="only queued"):
            svc_client.cancel(addr, job["job_id"])
        assert svc.step() is None  # cancelled job must not run
    finally:
        svc.stop()


def test_submit_spec_dict_is_removed():
    # PR 7 deprecated the spec-dict form for one release; it is gone now,
    # and refusing it happens before any socket I/O.
    with pytest.raises(TypeError, match="RenderRequest"):
        svc_client.submit("127.0.0.1:1", SPEC, priority=2)


def test_submit_rejects_unnamed_workloads(tmp_path):
    # The daemon rebuilds the scene from a recipe, so a live Animation (or
    # any request whose workload isn't a name) must be refused up front.
    with pytest.raises(TypeError, match="workload"):
        svc_client.submit("127.0.0.1:1", RenderRequest(workload=object()))


def test_service_refuses_stale_state_dir_without_resume(tmp_path):
    svc = make_service(tmp_path / "svc")
    svc.submit(SPEC)
    svc.stop()
    with pytest.raises(FileExistsError, match="--resume"):
        make_service(tmp_path / "svc")


# -- admission control -----------------------------------------------------------
def test_admission_control_sheds_with_explicit_rejection(tmp_path):
    svc = make_service(tmp_path / "svc", queue_capacity=2)
    host, port = svc.start()
    addr = f"{host}:{port}"
    try:
        svc_client.submit(addr, REQ, priority=5)
        svc_client.submit(addr, REQ, priority=5)
        # Queue full of higher-priority work: the newcomer itself is shed.
        with pytest.raises(ServiceError, match="rejected"):
            svc_client.submit(addr, REQ, priority=1)
        # A more urgent newcomer instead sheds a queued lower-priority job.
        job, shed = svc.submit(SPEC, priority=9)
        assert shed is not None and shed is not job
        assert shed.priority == 5 and shed.state == "rejected"
    finally:
        svc.stop()
    jobs = fold_jobs(replay_records(tmp_path / "svc" / "ledger.wal")[0])
    rejected = [j for j in jobs.values() if j.state == "rejected"]
    assert len(rejected) == 2  # both sheds journaled, never silent
    for job in rejected:
        assert "admission control" in job.detail


# -- retry / dead-letter ---------------------------------------------------------
def test_failed_job_retries_with_backoff_then_dead_letters(tmp_path):
    svc = make_service(tmp_path / "svc", retry_base=10.0, retry_cap=15.0)
    try:
        job, shed = svc.submit({"workload": "no-such-scene"}, max_attempts=2)
        assert shed is None
        t0 = time.time()
        out = svc.step()
        assert out.state == "queued"  # attempt 1 failed, re-queued
        assert out.n_attempts == 1
        assert out.attempts[0]["outcome"] == "error"
        assert out.attempts[0]["backoff"] == pytest.approx(10.0)
        assert out.not_before >= t0 + 10.0
        assert svc.step() is None  # inside the backoff window: not runnable
        out = svc.step(now=time.time() + 60.0)  # window over: final attempt
        assert out.state == "dead-letter"
        assert out.n_attempts == 2
        assert "exhausted" in out.detail
    finally:
        svc.stop()
    # The verdict (and the full attempt history) is durable.
    jobs = fold_jobs(replay_records(tmp_path / "svc" / "ledger.wal")[0])
    assert jobs[job.job_id].state == "dead-letter"
    assert [a["outcome"] for a in jobs[job.job_id].attempts] == ["error", "error"]


def test_backoff_is_capped_exponential(tmp_path):
    svc = make_service(tmp_path / "svc", retry_base=1.0, retry_cap=3.0)
    try:
        job, _ = svc.submit({"workload": "no-such-scene"}, max_attempts=4)
        delays = []
        now = time.time()
        for i in range(1, 5):
            # Each step far past the previous attempt's backoff window.
            out = svc.step(now=now + i * 1e6)
            if out.state == "queued":
                delays.append(out.attempts[-1]["backoff"])
        assert delays == [1.0, 2.0, 3.0]  # doubled, then capped
        assert out.state == "dead-letter"
    finally:
        svc.stop()


# -- crash + resume ---------------------------------------------------------------
def test_resume_continues_mid_job_bit_identically(tmp_path):
    """The headline drill, in-process: a service dies mid-job (emulated by
    journal + partial spool), and ``resume=True`` finishes from the last
    spooled task — never re-rendering finished work, frames bit-identical
    to the crash-free run."""
    # Crash-free reference.
    ref = make_service(tmp_path / "ref")
    ref.submit(SPEC)
    assert ref.step().state == "done"
    ref.stop()
    with np.load(tmp_path / "ref" / "jobs" / "j0001" / "frames.npz") as npz:
        ref_frames = npz["frames"]
    ref_spool = tmp_path / "ref" / "jobs" / "j0001" / "spool"
    spooled = sorted(p.name for p in ref_spool.glob("task_*.npz"))
    assert len(spooled) >= 4

    # The "crashed" service: job journaled as running, spool half-written.
    crash_dir = tmp_path / "crash"
    svc = make_service(crash_dir)
    job, _ = svc.submit(SPEC)
    svc.stop()  # releases the ledger handle; state stays on disk
    done_subset = spooled[: len(spooled) // 2]
    with JobLedger(crash_dir / "ledger.wal") as led:
        led.append("state", job=job.job_id, state="running", detail="attempt 1/3")
        for name in done_subset:
            led.append("task", job=job.job_id,
                       task=int(name[len("task_"):-len(".npz")]))
    spool = crash_dir / "jobs" / job.job_id / "spool"
    spool.mkdir(parents=True)
    shutil.copy(ref_spool / "manifest.json", spool / "manifest.json")
    for name in done_subset:
        shutil.copy(ref_spool / name, spool / name)

    # kill -9 happened here.  Restart with --resume.
    resumed = make_service(crash_dir, resume=True)
    try:
        assert resumed.n_recovered == 1
        job2 = resumed.jobs[job.job_id]
        assert job2.state == "queued" and job2.recovered
        assert job2.tasks_done == {int(n[len("task_"):-len(".npz")])
                                   for n in done_subset}
        out = resumed.step()
        assert out.state == "done"
        # Exactly the pre-crash tasks came from the checkpoint spool.
        assert out.n_from_checkpoint == len(done_subset)
    finally:
        resumed.stop()
    with np.load(crash_dir / "jobs" / job.job_id / "frames.npz") as npz:
        np.testing.assert_array_equal(npz["frames"], ref_frames)


def test_resume_with_torn_ledger_tail(tmp_path):
    """resume=True after a crash *mid-append* still replays cleanly."""
    svc = make_service(tmp_path / "svc")
    job, _ = svc.submit(SPEC)
    svc.stop()
    wal = tmp_path / "svc" / "ledger.wal"
    with JobLedger(wal) as led:
        led.append("state", job=job.job_id, state="running", detail="attempt 1/3")
    raw = wal.read_bytes()
    wal.write_bytes(raw + raw.splitlines(keepends=True)[-1][: 20])  # torn append
    resumed = make_service(tmp_path / "svc", resume=True)
    try:
        assert resumed.n_dropped_records == 1
        assert resumed.jobs[job.job_id].state == "queued"
        assert resumed.step().state == "done"
    finally:
        resumed.stop()


# -- live surface -----------------------------------------------------------------
def test_status_server_jobs_route_and_json_404(tmp_path):
    svc = make_service(tmp_path / "svc", status_port=0)
    svc.start()
    status_addr = f"127.0.0.1:{svc._status_server.port}"
    try:
        svc.submit(SPEC, priority=7, owner="ada")
        snap = fetch_status(status_addr, path="/jobs")
        assert snap["states"] == {"queued": 1}
        assert snap["jobs"][0]["owner"] == "ada"
        full = fetch_status(status_addr)  # default /status
        assert full["service"] == "repro.serve"
        assert full["queue_capacity"] == svc.queue_capacity
        # Unknown paths answer JSON, not stdlib HTML error pages.
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"http://{status_addr}/nope")
        assert err.value.code == 404
        assert err.value.headers["Content-Type"] == "application/json"
        body = json.loads(err.value.read().decode())
        assert "/jobs" in body["paths"] and "unknown path" in body["error"]
    finally:
        svc.stop()
