"""Tests for soft shadows (area lights) and adaptive antialiasing."""

import numpy as np
import pytest

from repro.coherence import validate_sequence
from repro.geometry import Plane, Sphere
from repro.lighting import PointLight, fibonacci_sphere
from repro.materials import Material
from repro.render import RayTracer, contrast_pixels, render_adaptive
from repro.rmath import Transform
from repro.scene import Camera, FunctionAnimation, Scene


# -- fibonacci sphere ----------------------------------------------------------
def test_fibonacci_sphere_unit_and_spread():
    pts = fibonacci_sphere(64)
    np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-12)
    # Roughly balanced hemispheres.
    assert abs(int((pts[:, 1] > 0).sum()) - 32) <= 2
    with pytest.raises(ValueError):
        fibonacci_sphere(0)


def test_light_softness_flags():
    hard = PointLight(np.zeros(3), np.ones(3))
    assert not hard.is_soft
    assert hard.sample_positions().shape == (1, 3)
    soft = PointLight(np.zeros(3), np.ones(3), radius=0.5, n_samples=8)
    assert soft.is_soft
    assert soft.sample_positions().shape == (8, 3)
    with pytest.raises(ValueError):
        PointLight(np.zeros(3), np.ones(3), radius=-1.0)
    with pytest.raises(ValueError):
        PointLight(np.zeros(3), np.ones(3), n_samples=0)


def _occluded_scene(radius=0.0, n_samples=1):
    cam = Camera(position=(0, 2, -6), look_at=(0, 0.5, 0), width=48, height=36)
    floor = Plane.from_normal((0, 1, 0), 0.0, material=Material.matte((1, 1, 1)), name="floor")
    blocker = Sphere.at((0, 2.0, 0), 0.7, material=Material.matte((1, 0, 0)), name="blocker")
    light = PointLight(
        np.array([0.0, 6.0, 0.0]), np.ones(3), radius=radius, n_samples=n_samples
    )
    return Scene(camera=cam, objects=[floor, blocker], lights=[light])


def test_soft_shadows_create_penumbra():
    hard_fb, hard_res = RayTracer(_occluded_scene()).render()
    soft_fb, soft_res = RayTracer(_occluded_scene(radius=0.8, n_samples=16)).render()
    # Soft shadows fire ~16x the shadow rays.
    assert soft_res.stats.shadow > 10 * hard_res.stats.shadow
    # The hard shadow boundary is a step; the soft one is a ramp.  Compare
    # the worst horizontal jump across the *floor* rows (the bottom third of
    # the image, away from the sphere silhouette): the penumbra must smooth
    # the transition substantially.
    hard_img = hard_fb.as_image()[12:, :, 0]
    soft_img = soft_fb.as_image()[12:, :, 0]
    hard_jump = np.abs(np.diff(hard_img, axis=1)).max()
    soft_jump = np.abs(np.diff(soft_img, axis=1)).max()
    assert soft_jump < 0.7 * hard_jump


def test_soft_shadow_energy_similar():
    hard_fb, _ = RayTracer(_occluded_scene()).render()
    soft_fb, _ = RayTracer(_occluded_scene(radius=0.3, n_samples=8)).render()
    assert soft_fb.data.mean() == pytest.approx(hard_fb.data.mean(), rel=0.1)


def test_coherence_exact_with_soft_shadows():
    """Soft shadow sample segments are all marked, so incremental rendering
    stays exact and conservative."""
    scene = _occluded_scene(radius=0.5, n_samples=6)
    anim = FunctionAnimation(
        scene, 3, motions={"blocker": lambda f: Transform.translate(0.3 * f, 0, 0)}
    )
    rep = validate_sequence(anim, grid_resolution=16)
    assert rep.all_exact
    assert rep.all_conservative


# -- adaptive antialiasing -------------------------------------------------------
def test_contrast_pixels_flat_image():
    img = np.full((6, 8, 3), 0.5)
    assert contrast_pixels(img, 0.1).size == 0


def test_contrast_pixels_vertical_edge():
    img = np.zeros((4, 6, 3))
    img[:, 3:] = 1.0
    ids = contrast_pixels(img, 0.5)
    # Both sides of the edge (columns 2 and 3) in every row.
    expected = sorted([r * 6 + c for r in range(4) for c in (2, 3)])
    assert sorted(ids.tolist()) == expected


def test_contrast_pixels_validation():
    with pytest.raises(ValueError):
        contrast_pixels(np.zeros((4, 4)), 0.1)
    with pytest.raises(ValueError):
        contrast_pixels(np.zeros((4, 4, 3)), -0.1)


def test_render_adaptive_refines_edges(simple_scene):
    result = render_adaptive(simple_scene, threshold=0.15, samples_per_axis=2)
    assert 0 < result.n_refined < simple_scene.camera.n_pixels
    # Refined pixels changed relative to the base pass; others did not.
    base_fb, _ = RayTracer(simple_scene).render()
    untouched = np.setdiff1d(simple_scene.camera.pixel_grid(), result.refined_pixels)
    np.testing.assert_array_equal(
        result.framebuffer.data[untouched], base_fb.data[untouched]
    )
    assert not np.array_equal(
        result.framebuffer.data[result.refined_pixels],
        base_fb.data[result.refined_pixels],
    )


def test_render_adaptive_flat_scene_no_refinement():
    cam = Camera(position=(0, 1, -5), look_at=(0, 1, 0), width=16, height=12)
    scene = Scene(camera=cam, objects=[], lights=[], background=np.array([0.3, 0.3, 0.3]))
    result = render_adaptive(scene, threshold=0.05)
    assert result.n_refined == 0
    assert result.stats.camera == 16 * 12


def test_render_adaptive_infinite_threshold(simple_scene):
    result = render_adaptive(simple_scene, threshold=np.inf)
    assert result.n_refined == 0


def test_render_adaptive_validation(simple_scene):
    with pytest.raises(ValueError):
        render_adaptive(simple_scene, samples_per_axis=1)


def test_render_adaptive_cheaper_than_full_supersampling(simple_scene):
    adaptive = render_adaptive(simple_scene, threshold=0.15, samples_per_axis=3)
    _, full = RayTracer(simple_scene).render(samples_per_axis=3)
    assert adaptive.stats.total < full.stats.total
