"""Unit and property tests for repro.rmath.vec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.rmath import (
    angle_between,
    clamp01,
    cross,
    dot,
    lerp,
    norm,
    norm_sq,
    normalize,
    orthonormal_basis,
    project,
    reflect,
    refract,
    reject,
    vec3,
    vec3s,
)

finite_vec = arrays(
    np.float64,
    (3,),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)
nonzero_vec = finite_vec.filter(lambda v: np.linalg.norm(v) > 1e-6)


def test_vec3_builds_array():
    v = vec3(1, 2, 3)
    assert v.shape == (3,)
    assert v.dtype == np.float64
    np.testing.assert_array_equal(v, [1, 2, 3])


def test_vec3s_shape_and_fill():
    a = vec3s(5, fill=2.5)
    assert a.shape == (5, 3)
    assert np.all(a == 2.5)


def test_dot_batched():
    a = np.array([[1.0, 0, 0], [0, 2.0, 0]])
    b = np.array([[1.0, 1, 0], [0, 3.0, 0]])
    np.testing.assert_allclose(dot(a, b), [1.0, 6.0])


def test_norm_and_norm_sq():
    v = np.array([[3.0, 4.0, 0.0]])
    np.testing.assert_allclose(norm_sq(v), [25.0])
    np.testing.assert_allclose(norm(v), [5.0])


def test_normalize_unit_length():
    v = np.array([[3.0, 4.0, 0.0], [0.0, 0.0, 2.0]])
    n = normalize(v)
    np.testing.assert_allclose(norm(n), [1.0, 1.0])


def test_normalize_zero_vector_unchanged():
    v = np.zeros((1, 3))
    np.testing.assert_array_equal(normalize(v), v)


def test_normalize_out_aliasing():
    v = np.array([[2.0, 0.0, 0.0]])
    result = normalize(v, out=v)
    assert result is v
    np.testing.assert_allclose(v, [[1.0, 0.0, 0.0]])


def test_cross_right_handed():
    x = np.array([1.0, 0, 0])
    y = np.array([0.0, 1, 0])
    np.testing.assert_allclose(cross(x, y), [0, 0, 1])


def test_reflect_mirror():
    d = np.array([[1.0, -1.0, 0.0]]) / np.sqrt(2)
    n = np.array([[0.0, 1.0, 0.0]])
    r = reflect(d, n)
    np.testing.assert_allclose(r, [[1.0, 1.0, 0.0]] / np.sqrt(2), atol=1e-12)


@given(d=nonzero_vec, n=nonzero_vec)
@settings(max_examples=80)
def test_reflect_preserves_length_and_flips_normal_component(d, n):
    d = d / np.linalg.norm(d)
    n = n / np.linalg.norm(n)
    r = reflect(d[None], n[None])[0]
    assert np.linalg.norm(r) == pytest.approx(1.0, abs=1e-9)
    # Component along n flips, tangential component is preserved.
    assert float(np.dot(r, n)) == pytest.approx(-float(np.dot(d, n)), abs=1e-9)
    assert np.allclose(r - np.dot(r, n) * n, d - np.dot(d, n) * n, atol=1e-9)


def test_refract_straight_through_at_eta_one():
    d = normalize(np.array([[0.3, -1.0, 0.2]]))
    n = np.array([[0.0, 1.0, 0.0]])
    t, tir = refract(d, n, 1.0)
    assert not tir[0]
    np.testing.assert_allclose(t, d, atol=1e-12)


def test_refract_snells_law():
    # 45 degrees into glass (eta = 1/1.5).
    theta_i = np.pi / 4
    d = np.array([[np.sin(theta_i), -np.cos(theta_i), 0.0]])
    n = np.array([[0.0, 1.0, 0.0]])
    t, tir = refract(d, n, 1.0 / 1.5)
    assert not tir[0]
    sin_t = np.linalg.norm(np.cross(t[0], -n[0]))
    assert sin_t == pytest.approx(np.sin(theta_i) / 1.5, abs=1e-9)


def test_refract_total_internal_reflection():
    # From glass to air beyond the critical angle (~41.8 deg).
    theta_i = np.radians(60)
    d = np.array([[np.sin(theta_i), -np.cos(theta_i), 0.0]])
    n = np.array([[0.0, 1.0, 0.0]])
    t, tir = refract(d, n, 1.5)
    assert tir[0]
    np.testing.assert_array_equal(t, np.zeros((1, 3)))


@given(d=nonzero_vec, eta=st.floats(0.4, 1.0))
@settings(max_examples=60)
def test_refract_transmitted_is_unit(d, eta):
    d = d / np.linalg.norm(d)
    n = np.array([0.0, 1.0, 0.0])
    if np.dot(d, n) >= -1e-6:
        d = d - 2 * max(np.dot(d, n), 0) * n  # force downward
        d = d / np.linalg.norm(d)
    if np.dot(d, n) > -1e-6:
        return
    t, tir = refract(d[None], n[None], eta)
    if not tir[0]:
        assert np.linalg.norm(t[0]) == pytest.approx(1.0, abs=1e-6)


def test_lerp_endpoints_and_midpoint():
    a = np.array([0.0, 0.0, 0.0])
    b = np.array([2.0, 4.0, 6.0])
    np.testing.assert_allclose(lerp(a, b, 0.0), a)
    np.testing.assert_allclose(lerp(a, b, 1.0), b)
    np.testing.assert_allclose(lerp(a, b, 0.5), [1, 2, 3])


def test_clamp01():
    np.testing.assert_array_equal(clamp01(np.array([-1.0, 0.5, 2.0])), [0.0, 0.5, 1.0])


def test_project_and_reject_decompose():
    a = np.array([3.0, 4.0, 5.0])
    onto = np.array([1.0, 0.0, 0.0])
    p = project(a, onto)
    r = reject(a, onto)
    np.testing.assert_allclose(p, [3, 0, 0])
    np.testing.assert_allclose(p + r, a)
    assert abs(np.dot(r, onto)) < 1e-12


def test_angle_between_known():
    assert angle_between(np.array([1.0, 0, 0]), np.array([0.0, 1, 0])) == pytest.approx(
        np.pi / 2
    )
    assert angle_between(np.array([1.0, 0, 0]), np.array([1.0, 0, 0])) == pytest.approx(0.0)


@given(n=nonzero_vec)
@settings(max_examples=80)
def test_orthonormal_basis_properties(n):
    n = n / np.linalg.norm(n)
    t, b = orthonormal_basis(n)
    for v in (t, b):
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-9)
    assert abs(np.dot(t, n)) < 1e-9
    assert abs(np.dot(b, n)) < 1e-9
    assert abs(np.dot(t, b)) < 1e-9


def test_orthonormal_basis_batched():
    n = normalize(np.array([[0.0, 0.0, 1.0], [1.0, 1.0, 0.0]]))
    t, b = orthonormal_basis(n)
    assert t.shape == (2, 3) and b.shape == (2, 3)
    np.testing.assert_allclose(dot(t, n), [0, 0], atol=1e-12)
