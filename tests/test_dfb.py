"""The distributed framebuffer: tiling, compositing, salvage, preview.

The contract under test is bit-exactness under every delivery disorder
the wire can produce: duplicate tiles, out-of-order tiles, tiles that
raced their worker's loss, degenerate layouts.  Pixels either composite
to exactly what a serial render would produce, or the assembler refuses
to hand over frames at all.
"""

import io
import json
import urllib.request
import zlib

import numpy as np
import pytest

from repro.dfb import (
    DEFAULT_TILE_PX,
    FrameAssembler,
    FrameBuffer,
    PreviewHub,
    encode_png,
    tile_rects,
)
from repro.obs import StatusServer

RNG = np.random.default_rng(7)


def reference(n, h, w):
    """A deterministic 'rendered' frame stack with full float64 entropy."""
    return RNG.random((n, h, w, 3))


def tiles_of(image, box, tile_px):
    """Split one frame's box into (rect, pixels) the way a worker would."""
    x0, y0, x1, y1 = box
    return [
        ((tx0, ty0, tx1, ty1), image[ty0:ty1, tx0:tx1].copy())
        for tx0, ty0, tx1, ty1 in tile_rects(x0, y0, x1, y1, tile_px)
    ]


# -- tile_rects -------------------------------------------------------------------
def test_tile_rects_cover_box_exactly_once():
    cover = np.zeros((37, 53), dtype=int)
    for tx0, ty0, tx1, ty1 in tile_rects(0, 0, 53, 37, 16):
        cover[ty0:ty1, tx0:tx1] += 1
    assert (cover == 1).all()


def test_tile_rects_anchor_at_image_origin():
    # Adjacent boxes must produce identical tile keys on their shared grid
    # cells, or a replacement worker's skip-list would never match.
    left = set(tile_rects(0, 0, 48, 32, 16))
    right = set(tile_rects(16, 0, 64, 32, 16))
    assert left & right == set(tile_rects(16, 0, 48, 32, 16))


def test_tile_rects_rejects_bad_edge():
    with pytest.raises(ValueError, match="tile_px"):
        list(tile_rects(0, 0, 8, 8, 0))


# -- FrameBuffer / FrameAssembler edge cases --------------------------------------
def test_duplicate_tile_delivery_is_idempotent_and_bit_identical():
    ref = reference(1, 24, 32)[0]
    fb = FrameBuffer(24, 32)
    tiles = tiles_of(ref, (0, 0, 32, 24), 16)
    for (x0, y0, x1, y1), px in tiles:
        assert fb.add_tile(x0, y0, x1, y1, px) == (y1 - y0) * (x1 - x0)
    # Re-deliver everything: zero newly-covered pixels, pixels unchanged.
    for (x0, y0, x1, y1), px in tiles:
        assert fb.add_tile(x0, y0, x1, y1, px) == 0
    assert fb.complete
    assert fb.image.tobytes() == ref.tobytes()


def test_out_of_order_tiles_compose_bit_identically():
    ref = reference(3, 24, 32)
    asm = FrameAssembler(3, 32, 24)
    deliveries = [
        (f, rect, px)
        for f in range(3)
        for rect, px in tiles_of(ref[f], (0, 0, 32, 24), 10)
    ]
    RNG.shuffle(deliveries)
    for f, (x0, y0, x1, y1), px in deliveries:
        asm.add_tile(f, x0, y0, x1, y1, px)
    assert asm.complete
    assert asm.frames().tobytes() == ref.tobytes()


def test_tile_from_lost_worker_is_kept_and_overwritten_harmlessly():
    """A tile that landed before its worker was declared lost stays in the
    compositor; the replacement re-renders the box and overwrites it with
    identical pixels — the composite must not depend on who delivered."""
    ref = reference(1, 32, 32)[0]
    asm = FrameAssembler(1, 32, 32)
    tiles = tiles_of(ref, (0, 0, 32, 32), 16)
    # The doomed worker delivered one tile, then died.
    (x0, y0, x1, y1), px = tiles[1]
    asm.add_tile(0, x0, y0, x1, y1, px)
    skip = asm.covered_tiles((0, 0, 32, 32), 0, 1, 16)
    assert skip == [(0, x0, y0, x1, y1)]
    # The replacement skips that tile and sends the rest...
    for (tx0, ty0, tx1, ty1), tpx in tiles:
        if (0, tx0, ty0, tx1, ty1) in skip:
            continue
        asm.add_tile(0, tx0, ty0, tx1, ty1, tpx)
    assert asm.complete
    # ...and even a straggler duplicate of the dead worker's tile is harmless.
    asm.add_tile(0, x0, y0, x1, y1, px)
    assert asm.frames()[0].tobytes() == ref.tobytes()


def test_degenerate_one_by_one_tiles():
    ref = reference(1, 5, 7)[0]
    asm = FrameAssembler(1, 7, 5)
    tiles = tiles_of(ref, (0, 0, 7, 5), 1)
    assert len(tiles) == 35 and all(px.shape == (1, 1, 3) for _, px in tiles)
    for (x0, y0, x1, y1), px in tiles:
        asm.add_tile(0, x0, y0, x1, y1, px)
    assert asm.frames()[0].tobytes() == ref.tobytes()


def test_mixed_tiles_and_whole_segments_compose():
    # Half the frames arrive as streamed tiles, half as a pre-tile
    # worker's flat (n, h*w, 3) RESULT payload — one compositor state.
    ref = reference(4, 16, 16)
    asm = FrameAssembler(4, 16, 16)
    for f in (0, 2):
        for (x0, y0, x1, y1), px in tiles_of(ref[f], (0, 0, 16, 16), 6):
            asm.add_tile(f, x0, y0, x1, y1, px)
    asm.add_segment(None, 1, 2, ref[1].reshape(1, -1, 3))
    asm.add_segment((0, 0, 16, 16), 3, 4, ref[3:4])
    assert asm.frames().tobytes() == ref.tobytes()


def test_assembler_rejects_bad_tiles_and_incomplete_readout():
    asm = FrameAssembler(2, 16, 16)
    with pytest.raises(ValueError, match="outside"):
        asm.add_tile(0, 8, 8, 24, 16, np.zeros((8, 16, 3)))
    with pytest.raises(ValueError, match="shape"):
        asm.add_tile(0, 0, 0, 8, 8, np.zeros((4, 4, 3)))
    with pytest.raises(ValueError, match="frame"):
        asm.add_tile(5, 0, 0, 8, 8, np.zeros((8, 8, 3)))
    asm.add_tile(0, 0, 0, 16, 16, np.zeros((16, 16, 3)))
    with pytest.raises(RuntimeError, match="incomplete"):
        asm.frames()


def test_partial_retry_accounting():
    asm = FrameAssembler(4, 16, 16)
    box = (0, 0, 16, 16)
    ref = reference(2, 16, 16)
    asm.add_segment(box, 0, 2, ref)  # frames 0-1 landed before the loss
    assert asm.frames_done(box, 0, 4) == 2
    assert not asm.range_complete(box, 0, 4)
    assert asm.range_complete(box, 0, 2)
    # A replacement assignment therefore starts at frame 2, and its
    # skip-list covers every tile of the salvaged frames.
    skip = asm.covered_tiles(box, 0, 4, 8)
    assert {s[0] for s in skip} == {0, 1} and len(skip) == 2 * 4


# -- preview surface --------------------------------------------------------------
def test_encode_png_is_a_valid_png():
    img = reference(1, 9, 13)[0]
    data = encode_png(img)
    assert data[:8] == b"\x89PNG\r\n\x1a\n"
    # IHDR carries the dimensions big-endian right after the signature.
    assert data[16:24] == (13).to_bytes(4, "big") + (9).to_bytes(4, "big")
    # The IDAT payload inflates to filter-prefixed scanlines.
    idat_at = data.index(b"IDAT")
    idat_len = int.from_bytes(data[idat_at - 4 : idat_at], "big")
    raw = zlib.decompress(data[idat_at + 4 : idat_at + 4 + idat_len])
    assert len(raw) == 9 * (1 + 13 * 3)
    expected = (np.clip(img, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    got = np.frombuffer(raw, np.uint8).reshape(9, -1)[:, 1:].reshape(9, 13, 3)
    np.testing.assert_array_equal(got, expected)


def test_preview_hub_tracks_the_filling_frame():
    hub = PreviewHub()
    assert hub.route({}) == {"available": False}
    asm = FrameAssembler(2, 16, 16)
    hub.attach(asm, workload="newton")
    ref = reference(1, 16, 16)[0]
    asm.add_tile(0, 0, 0, 16, 8, ref[:8])
    snap = hub.route({})
    assert snap["available"] and snap["frame"] == 0
    assert snap["coverage"] == pytest.approx(0.5)
    assert snap["frames_complete"] == 0 and snap["workload"] == "newton"
    png, ctype = hub.route({"fmt": "png"})
    assert ctype == "image/png" and png[:8] == b"\x89PNG\r\n\x1a\n"
    buf, ctype = hub.route({"fmt": "npz", "frame": "0"})
    with np.load(io.BytesIO(buf)) as z:
        assert int(z["frame"]) == 0
        assert z["image"].shape == (16, 16, 3)
        assert float(z["coverage"]) == pytest.approx(0.5)
    assert "error" in hub.route({"frame": "9"})
    hub.detach()
    assert hub.route({"fmt": "png"}) == {"available": False}


def test_status_server_serves_preview_route():
    class _Ledger:
        def snapshot(self):
            return {"ok": True}

    hub = PreviewHub()
    asm = FrameAssembler(1, 8, 8)
    asm.add_tile(0, 0, 0, 8, 4, np.zeros((4, 8, 3)))
    hub.attach(asm)
    with StatusServer(_Ledger(), routes={"/preview": hub.route}) as srv:
        base = f"http://127.0.0.1:{srv.port}"
        with urllib.request.urlopen(f"{base}/preview?fmt=json") as resp:
            snap = json.loads(resp.read())
        assert snap["available"] and snap["coverage"] == pytest.approx(0.5)
        with urllib.request.urlopen(f"{base}/preview?fmt=png") as resp:
            assert resp.headers["Content-Type"] == "image/png"
            assert resp.read()[:8] == b"\x89PNG\r\n\x1a\n"
        # Plain JSON routes are untouched by the query machinery.
        with urllib.request.urlopen(f"{base}/status?x=1") as resp:
            assert json.loads(resp.read()) == {"ok": True}


def test_default_tile_px_is_sane():
    assert DEFAULT_TILE_PX == 32
