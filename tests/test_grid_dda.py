"""Tests for the uniform grid and the vectorized 3-D DDA traversal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import UniformGrid, traverse
from repro.geometry import Sphere
from repro.rmath import AABB, normalize, vec3


def _grid(res=(4, 4, 4), lo=(0, 0, 0), hi=(4, 4, 4)):
    return UniformGrid(AABB(vec3(*lo), vec3(*hi)), res)


# -- grid geometry --------------------------------------------------------------
def test_flatten_unflatten_roundtrip():
    g = _grid((3, 5, 7))
    vids = np.arange(g.n_voxels)
    cells = g.unflatten(vids)
    np.testing.assert_array_equal(g.flatten(cells), vids)


@given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8))
@settings(max_examples=40)
def test_flatten_bijective(nx, ny, nz):
    g = _grid((nx, ny, nz))
    vids = np.arange(g.n_voxels)
    assert np.unique(g.flatten(g.unflatten(vids))).size == g.n_voxels


def test_cell_of_points_clipped():
    g = _grid()
    cells = g.cell_of_points(np.array([[-1.0, 2.0, 10.0]]))
    np.testing.assert_array_equal(cells[0], [0, 2, 3])


def test_voxel_bounds():
    g = _grid()
    b = g.voxel_bounds(0)
    np.testing.assert_array_equal(b.lo, [0, 0, 0])
    np.testing.assert_array_equal(b.hi, [1, 1, 1])


def test_voxels_overlapping_small_box():
    g = _grid()
    vids = g.voxels_overlapping(AABB(vec3(0.1, 0.1, 0.1), vec3(0.9, 0.9, 0.9)))
    assert vids.tolist() == [0]


def test_voxels_overlapping_spanning_box():
    g = _grid()
    vids = g.voxels_overlapping(AABB(vec3(0.5, 0.5, 0.5), vec3(1.5, 0.9, 0.9)))
    assert sorted(vids.tolist()) == [0, 1]


def test_voxels_overlapping_boundary_exact():
    """A box ending exactly on a cell boundary must not spill over."""
    g = _grid()
    vids = g.voxels_overlapping(AABB(vec3(0, 0, 0), vec3(1.0, 1.0, 1.0)))
    assert vids.tolist() == [0]


def test_voxels_overlapping_outside():
    g = _grid()
    assert g.voxels_overlapping(AABB(vec3(10, 10, 10), vec3(11, 11, 11))).size == 0
    assert g.voxels_overlapping(AABB.empty()).size == 0


def test_grid_validation():
    with pytest.raises(ValueError):
        _grid((0, 4, 4))
    with pytest.raises(ValueError):
        UniformGrid(AABB.empty(), 4)


def test_build_object_lists():
    g = _grid()
    s = Sphere.at((0.5, 0.5, 0.5), 0.4)
    lists = g.build_object_lists([s])
    assert lists == {0: pytest.approx(np.array([0]))} or list(lists.keys()) == [0]


def test_for_scene(simple_scene):
    g = UniformGrid.for_scene(simple_scene, 8)
    assert g.n_voxels == 512


# -- DDA traversal ----------------------------------------------------------------
def test_axis_aligned_traversal():
    g = _grid()
    o = np.array([[-1.0, 0.5, 0.5]])
    d = np.array([[1.0, 0.0, 0.0]])
    ray_idx, vox = traverse(g, o, d)
    # Crosses all 4 voxels of the row y=0, z=0.
    np.testing.assert_array_equal(ray_idx, [0, 0, 0, 0])
    np.testing.assert_array_equal(np.sort(vox), g.flatten(np.array([[i, 0, 0] for i in range(4)])))


def test_traversal_order_front_to_back():
    g = _grid()
    o = np.array([[-1.0, 0.5, 0.5]])
    d = np.array([[1.0, 0.0, 0.0]])
    _, vox = traverse(g, o, d)
    xs = g.unflatten(vox)[:, 0]
    assert np.all(np.diff(xs) > 0)


def test_t_max_clips_traversal():
    g = _grid()
    o = np.array([[-1.0, 0.5, 0.5]])
    d = np.array([[1.0, 0.0, 0.0]])
    # t_max = 2.5 -> reaches x = 1.5, i.e. cells 0 and 1 only.
    _, vox = traverse(g, o, d, t_max=np.array([2.5]))
    assert np.sort(g.unflatten(vox)[:, 0]).tolist() == [0, 1]


def test_ray_missing_grid():
    g = _grid()
    o = np.array([[10.0, 10.0, 10.0]])
    d = np.array([[1.0, 0.0, 0.0]])
    ray_idx, vox = traverse(g, o, d)
    assert ray_idx.size == 0 and vox.size == 0


def test_ray_starting_inside_grid():
    g = _grid()
    o = np.array([[1.5, 1.5, 1.5]])
    d = np.array([[0.0, 1.0, 0.0]])
    _, vox = traverse(g, o, d)
    ys = np.sort(g.unflatten(vox)[:, 1]).tolist()
    assert ys == [1, 2, 3]


def test_diagonal_traversal_connected():
    """Consecutive visited voxels differ by exactly one step on one axis."""
    g = _grid((8, 8, 8), (0, 0, 0), (8, 8, 8))
    o = np.array([[-0.5, 0.3, 0.7]])
    d = normalize(np.array([[1.0, 0.8, 0.6]]))
    _, vox = traverse(g, o, d)
    cells = g.unflatten(vox)
    diffs = np.abs(np.diff(cells, axis=0)).sum(axis=1)
    assert np.all(diffs == 1)


def test_multiple_rays_batched():
    g = _grid()
    o = np.array([[-1.0, 0.5, 0.5], [0.5, -1.0, 2.5]])
    d = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
    ray_idx, vox = traverse(g, o, d)
    assert set(ray_idx.tolist()) == {0, 1}
    assert (ray_idx == 0).sum() == 4
    assert (ray_idx == 1).sum() == 4


def test_empty_batch():
    g = _grid()
    ray_idx, vox = traverse(g, np.empty((0, 3)), np.empty((0, 3)))
    assert ray_idx.size == 0


@given(
    ox=st.floats(-2, 6),
    oy=st.floats(-2, 6),
    oz=st.floats(-2, 6),
    dx=st.floats(-1, 1),
    dy=st.floats(-1, 1),
    dz=st.floats(-1, 1),
)
@settings(max_examples=120, deadline=None)
def test_sampled_ray_points_are_in_visited_voxels(ox, oy, oz, dx, dy, dz):
    """Property: densely sampled points along the clipped ray must lie in
    voxels the DDA reported (no gaps in coverage)."""
    d = np.array([dx, dy, dz])
    if np.linalg.norm(d) < 1e-3:
        return
    d = d / np.linalg.norm(d)
    g = _grid()
    o = np.array([ox, oy, oz])
    t_max = 12.0
    ray_idx, vox = traverse(g, o[None], d[None], t_max=np.array([t_max]))
    visited = set(vox.tolist())
    interior_lo = g.bounds.lo + 1e-9
    interior_hi = g.bounds.hi - 1e-9
    for t in np.linspace(1e-6, t_max, 400):
        p = o + t * d
        if np.all(p > interior_lo) and np.all(p < interior_hi):
            cell = g.cell_of_points(p[None])[0]
            vid = int(g.flatten(cell[None])[0])
            # Tolerate boundary ambiguity: accept if p is within a hair of a
            # visited voxel's bounds.
            if vid not in visited:
                ok = any(
                    g.voxel_bounds(v).expanded(1e-6).contains_point(p) for v in visited
                )
                assert ok, f"point {p} at t={t} in voxel {vid} not covered by {visited}"
