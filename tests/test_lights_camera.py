"""Tests for lights and the pinhole camera."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import RayKind
from repro.lighting import PointLight
from repro.scene import Camera


# -- PointLight ---------------------------------------------------------------
def test_shadow_rays_point_at_light():
    light = PointLight(np.array([0.0, 10.0, 0.0]), np.array([1.0, 1.0, 1.0]))
    pts = np.array([[0.0, 0.0, 0.0], [3.0, 10.0, 4.0]])
    dirs, dists = light.shadow_rays(pts)
    np.testing.assert_allclose(dists, [10.0, 5.0])
    np.testing.assert_allclose(pts + dirs * dists[:, None], [[0, 10, 0]] * 2, atol=1e-12)
    np.testing.assert_allclose(np.linalg.norm(dirs, axis=1), [1, 1])


def test_intensity_no_fade():
    light = PointLight(np.zeros(3), np.array([0.5, 0.6, 0.7]))
    i = light.intensity_at(np.array([1.0, 100.0]))
    np.testing.assert_array_equal(i, [[0.5, 0.6, 0.7]] * 2)


def test_intensity_fades_with_distance():
    light = PointLight(np.zeros(3), np.ones(3), fade_distance=5.0, fade_power=2.0)
    near = light.intensity_at(np.array([1.0]))[0]
    at_fade = light.intensity_at(np.array([5.0]))[0]
    far = light.intensity_at(np.array([50.0]))[0]
    assert np.all(near >= at_fade) and np.all(at_fade >= far)
    np.testing.assert_allclose(at_fade, [1.0, 1.0, 1.0])  # 2/(1+1) = 1


def test_light_validation():
    with pytest.raises(ValueError):
        PointLight(np.zeros(3), np.array([-1.0, 0, 0]))
    with pytest.raises(ValueError):
        PointLight(np.zeros(3), np.ones(3), fade_distance=-1.0)


# -- Camera ----------------------------------------------------------------------
def _cam(**kw):
    defaults = dict(position=(0, 0, -5), look_at=(0, 0, 0), width=40, height=30, fov_degrees=60)
    defaults.update(kw)
    return Camera(**defaults)


def test_center_ray_is_view_direction():
    cam = _cam(width=41, height=31)  # odd so a pixel center sits on axis
    center_pixel = (31 // 2) * 41 + 41 // 2
    batch = cam.rays_for_pixels(np.array([center_pixel]))
    np.testing.assert_allclose(batch.dirs[0], [0, 0, 1], atol=1e-9)
    np.testing.assert_allclose(batch.origins[0], [0, 0, -5])
    assert batch.kind == RayKind.CAMERA


def test_fov_at_image_edge():
    cam = _cam(width=400, height=300, fov_degrees=90)
    # Left edge of the image plane is at tan(45 deg) horizontally.
    left_mid = (300 // 2) * 400 + 0
    batch = cam.rays_for_pixels(np.array([left_mid]))
    d = batch.dirs[0]
    angle = np.degrees(np.arctan2(-d @ cam._u, d @ cam._w))
    assert angle == pytest.approx(45.0, abs=0.5)


def test_all_rays_count_and_uniqueness():
    cam = _cam()
    batch = cam.all_rays()
    assert len(batch) == 40 * 30
    assert np.unique(batch.pixel).size == 1200


def test_pixel_subset_matches_full_grid():
    cam = _cam()
    subset = np.array([0, 17, 599, 1199])
    partial = cam.rays_for_pixels(subset)
    full = cam.all_rays()
    np.testing.assert_array_equal(partial.dirs, full.dirs[subset])


def test_pixel_out_of_range():
    cam = _cam()
    with pytest.raises(ValueError):
        cam.rays_for_pixels(np.array([40 * 30]))
    with pytest.raises(ValueError):
        cam.rays_for_pixels(np.array([-1]))


def test_jitter_moves_rays():
    cam = _cam()
    pid = np.array([600])
    a = cam.rays_for_pixels(pid)
    b = cam.rays_for_pixels(pid, jitter=np.array([[0.4, -0.4]]))
    assert not np.allclose(a.dirs, b.dirs)


def test_camera_validation():
    with pytest.raises(ValueError):
        _cam(width=0)
    with pytest.raises(ValueError):
        _cam(fov_degrees=0.0)
    with pytest.raises(ValueError):
        _cam(fov_degrees=180.0)
    with pytest.raises(ValueError):
        Camera(position=(0, 0, 0), look_at=(0, 0, 0))
    with pytest.raises(ValueError):
        Camera(position=(0, 0, -5), look_at=(0, 0, 0), up=(0, 0, 1))


def test_with_resolution_keeps_view():
    cam = _cam()
    hi = cam.with_resolution(80, 60)
    assert (hi.width, hi.height) == (80, 60)
    np.testing.assert_array_equal(hi.position, cam.position)
    np.testing.assert_array_equal(hi.look_at, cam.look_at)


@given(st.integers(0, 40 * 30 - 1))
@settings(max_examples=40)
def test_rays_are_unit_length(pid):
    cam = _cam()
    batch = cam.rays_for_pixels(np.array([pid]))
    assert np.linalg.norm(batch.dirs[0]) == pytest.approx(1.0, abs=1e-12)


def test_aspect_ratio_symmetry():
    """Rays to mirrored pixels are mirrored."""
    cam = _cam(width=40, height=30)
    left = cam.rays_for_pixels(np.array([15 * 40 + 5]))
    right = cam.rays_for_pixels(np.array([15 * 40 + 34]))
    lx = left.dirs[0] @ cam._u
    rx = right.dirs[0] @ cam._u
    assert lx == pytest.approx(-rx, abs=1e-12)
