"""The unified render facade: one request shape for all three engines."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import ENGINES, SIM_STRATEGIES, RenderRequest, RenderResult, render
from repro.telemetry import CORE_EVENTS, schema_of_events, validate_events

SMALL = dict(workload="newton", n_frames=3, width=48, height=36, grid_resolution=12)


# -- dispatch --------------------------------------------------------------------
def test_animation_engine_matches_pipeline():
    from repro.pipeline import _render_animation
    from repro.scenes import newton_animation

    result = render(RenderRequest(engine="animation", **SMALL))
    assert isinstance(result, RenderResult)
    assert result.engine == "animation" and result.workload == "newton"
    anim = newton_animation(n_frames=3, width=48, height=36)
    reference = _render_animation(anim, grid_resolution=12)
    assert np.array_equal(result.frames, reference.frames)
    assert result.stats.total == reference.stats.total
    assert result.total_copied_pixels() == reference.total_copied_pixels()


def test_farm_engine_bit_identical(tmp_path):
    result = render(
        RenderRequest(
            engine="farm", executor="thread", n_workers=2, mode="frame",
            verify=True, telemetry=True, run_dir=tmp_path / "run", **SMALL,
        )
    )
    assert result.engine == "farm"
    assert result.bit_identical is True
    assert result.n_tasks > 0 and result.n_workers == 2
    assert result.recovery["retries"] == 0
    assert (tmp_path / "run" / "events.jsonl").exists()


def test_simulate_engine_returns_outcome():
    result = render(RenderRequest(engine="simulate", strategy="frame-division-fc", **SMALL))
    assert result.engine == "simulate" and result.mode == "frame-division-fc"
    assert result.outcome is not None
    assert result.outcome.total_time > 0
    assert result.frames is None  # the simulator models time, not pixels


def test_kwargs_override_request():
    req = RenderRequest(engine="animation", **SMALL)
    result = render(req, n_frames=2)
    assert result.n_frames == 2


def test_bad_engine_strategy_workload_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        render(RenderRequest(engine="warp"))
    with pytest.raises(ValueError, match="unknown strategy"):
        render(RenderRequest(engine="simulate", strategy="psychic", **SMALL))
    with pytest.raises(ValueError, match="unknown workload"):
        render(RenderRequest(workload="doom"))
    with pytest.raises(ValueError, match="picklable"):
        from repro.scenes import newton_animation

        render(RenderRequest(workload=newton_animation(n_frames=2), engine="farm"))
    assert set(ENGINES) == {"animation", "farm", "simulate"}
    assert "sequence-division-fc" in SIM_STRATEGIES


def test_render_animation_entry_point_removed():
    import repro
    import repro.pipeline

    assert not hasattr(repro, "render_animation")
    assert not hasattr(repro.pipeline, "render_animation")


def test_result_frames_are_lazy_but_array_shaped():
    from repro.api import LazyFrames

    calls = []

    def thunk():
        calls.append(1)
        return np.zeros((2, 3, 4, 3))

    lazy = LazyFrames(thunk)
    assert calls == []  # nothing materialized yet
    assert lazy.shape == (2, 3, 4, 3)
    assert len(lazy) == 2 and lazy[0].shape == (3, 4, 3)
    assert np.asarray(lazy).dtype == np.float64
    assert calls == [1]  # the thunk ran exactly once

    result = render(RenderRequest(engine="animation", **SMALL))
    assert isinstance(result.frames, LazyFrames)
    assert result.frames.shape == (3, 36, 48, 3)
    assert result.frames.tobytes() == np.asarray(result.frames).tobytes()


def test_unified_callbacks_across_engines():
    """on_frame fires per frame on every engine (FrameEvent), with pixels
    on the real engines and image=None on the simulators."""
    for engine, has_pixels in (("animation", True), ("farm", True), ("simulate", False)):
        seen = []
        kwargs = {"executor": "thread", "n_workers": 2} if engine == "farm" else {}
        render(RenderRequest(engine=engine, on_frame=seen.append, **kwargs, **SMALL))
        assert [ev.frame for ev in seen] == [0, 1, 2], engine
        assert all((ev.image is not None) == has_pixels for ev in seen), engine


# -- the telemetry acceptance criterion ------------------------------------------
def test_farm_and_simulator_emit_identical_schema(tmp_path):
    """A real farm run and a simulated run of the same Newton spec must be
    schema-identical on every event name they share, and both must cover
    the core event set."""
    farm = render(
        RenderRequest(
            engine="farm", executor="thread", n_workers=2, mode="sequence",
            telemetry=True, **SMALL,
        )
    )
    sim = render(
        RenderRequest(engine="simulate", strategy="sequence-division-fc",
                      telemetry=True, **SMALL)
    )
    validate_events(farm.events)
    validate_events(sim.events)
    farm_schema = schema_of_events(farm.events)
    sim_schema = schema_of_events(sim.events)
    assert set(CORE_EVENTS) <= set(farm_schema)
    assert set(CORE_EVENTS) <= set(sim_schema)
    shared = set(farm_schema) & set(sim_schema)
    for name in shared:
        assert frozenset(farm_schema[name]) == frozenset(sim_schema[name]), name


def test_animation_engine_core_events_and_jsonl(tmp_path):
    result = render(
        RenderRequest(engine="animation", telemetry=True,
                      events_path=tmp_path / "log.jsonl", **SMALL)
    )
    validate_events(result.events)
    names = {e["name"] for e in result.events}
    assert set(CORE_EVENTS) <= names
    on_disk = [json.loads(s) for s in Path(result.events_path).read_text().splitlines()]
    assert on_disk == result.events
    # run.end totals agree with the returned stats object.
    end = next(e for e in result.events if e["name"] == "run.end")
    assert end["attrs"]["rays_total"] == result.stats.total
    assert end["attrs"]["computed_pixels"] == result.total_computed_pixels()


def test_no_telemetry_means_no_events():
    result = render(RenderRequest(engine="animation", **SMALL))
    assert result.events == [] and result.events_path is None


def test_farm_profile_dir_produces_mergeable_profiles(tmp_path):
    from repro.telemetry import merge_profiles

    result = render(
        RenderRequest(
            engine="farm", executor="serial", n_workers=1, mode="sequence",
            telemetry=True, profile_dir=tmp_path / "prof", **SMALL,
        )
    )
    profs = sorted((tmp_path / "prof").glob("*.prof"))
    assert profs, "each task should leave a .prof file"
    assert merge_profiles(tmp_path / "prof") is not None
    names = {e["name"] for e in result.events}
    assert "profile" in names


# -- the CLI surface -------------------------------------------------------------
def test_cli_telemetry_subcommand(tmp_path, capsys):
    from repro.cli import main

    run_dir = tmp_path / "run"
    render(
        RenderRequest(engine="farm", executor="thread", n_workers=2,
                      telemetry=True, run_dir=run_dir, **SMALL)
    )
    assert main(["telemetry", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "telemetry report" in out
    assert "rays by kind" in out
    assert "per-worker utilization" in out
    assert main(["telemetry", str(run_dir / "events.jsonl")]) == 0


def test_cli_simulate_subcommand(capsys):
    from repro.cli import main

    rc = main(
        ["simulate", "newton", "--frames", "3", "--width", "48", "--height", "36",
         "--grid", "12", "--strategy", "frame-division-fc"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "frame-division+fc" in out
    assert "virtual seconds" in out
