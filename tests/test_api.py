"""The unified render facade: one request shape for all three engines."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import ENGINES, SIM_STRATEGIES, RenderRequest, RenderResult, render
from repro.telemetry import CORE_EVENTS, schema_of_events, validate_events

SMALL = dict(workload="newton", n_frames=3, width=48, height=36, grid_resolution=12)


# -- dispatch --------------------------------------------------------------------
def test_animation_engine_matches_pipeline():
    from repro.pipeline import _render_animation
    from repro.scenes import newton_animation

    result = render(RenderRequest(engine="animation", **SMALL))
    assert isinstance(result, RenderResult)
    assert result.engine == "animation" and result.workload == "newton"
    anim = newton_animation(n_frames=3, width=48, height=36)
    reference = _render_animation(anim, grid_resolution=12)
    assert np.array_equal(result.frames, reference.frames)
    assert result.stats.total == reference.stats.total
    assert result.total_copied_pixels() == reference.total_copied_pixels()


def test_farm_engine_bit_identical(tmp_path):
    result = render(
        RenderRequest(
            engine="farm", executor="thread", n_workers=2, mode="frame",
            verify=True, telemetry=True, run_dir=tmp_path / "run", **SMALL,
        )
    )
    assert result.engine == "farm"
    assert result.bit_identical is True
    assert result.n_tasks > 0 and result.n_workers == 2
    assert result.recovery["retries"] == 0
    assert (tmp_path / "run" / "events.jsonl").exists()


def test_simulate_engine_returns_outcome():
    result = render(RenderRequest(engine="simulate", strategy="frame-division-fc", **SMALL))
    assert result.engine == "simulate" and result.mode == "frame-division-fc"
    assert result.outcome is not None
    assert result.outcome.total_time > 0
    assert result.frames is None  # the simulator models time, not pixels


def test_kwargs_override_request():
    req = RenderRequest(engine="animation", **SMALL)
    result = render(req, n_frames=2)
    assert result.n_frames == 2


def test_bad_engine_strategy_workload_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        render(RenderRequest(engine="warp"))
    with pytest.raises(ValueError, match="unknown strategy"):
        render(RenderRequest(engine="simulate", strategy="psychic", **SMALL))
    with pytest.raises(ValueError, match="unknown workload"):
        render(RenderRequest(workload="doom"))
    with pytest.raises(ValueError, match="picklable"):
        from repro.scenes import newton_animation

        render(RenderRequest(workload=newton_animation(n_frames=2), engine="farm"))
    assert set(ENGINES) == {"animation", "farm", "simulate"}
    assert "sequence-division-fc" in SIM_STRATEGIES


def test_render_animation_entry_point_deprecated():
    from repro.pipeline import render_animation
    from repro.scenes import newton_animation

    anim = newton_animation(n_frames=2, width=32, height=24)
    with pytest.warns(DeprecationWarning, match="repro.api.render"):
        out = render_animation(anim, grid_resolution=12)
    assert out.n_frames == 2


# -- the telemetry acceptance criterion ------------------------------------------
def test_farm_and_simulator_emit_identical_schema(tmp_path):
    """A real farm run and a simulated run of the same Newton spec must be
    schema-identical on every event name they share, and both must cover
    the core event set."""
    farm = render(
        RenderRequest(
            engine="farm", executor="thread", n_workers=2, mode="sequence",
            telemetry=True, **SMALL,
        )
    )
    sim = render(
        RenderRequest(engine="simulate", strategy="sequence-division-fc",
                      telemetry=True, **SMALL)
    )
    validate_events(farm.events)
    validate_events(sim.events)
    farm_schema = schema_of_events(farm.events)
    sim_schema = schema_of_events(sim.events)
    assert set(CORE_EVENTS) <= set(farm_schema)
    assert set(CORE_EVENTS) <= set(sim_schema)
    shared = set(farm_schema) & set(sim_schema)
    for name in shared:
        assert frozenset(farm_schema[name]) == frozenset(sim_schema[name]), name


def test_animation_engine_core_events_and_jsonl(tmp_path):
    result = render(
        RenderRequest(engine="animation", telemetry=True,
                      events_path=tmp_path / "log.jsonl", **SMALL)
    )
    validate_events(result.events)
    names = {e["name"] for e in result.events}
    assert set(CORE_EVENTS) <= names
    on_disk = [json.loads(s) for s in Path(result.events_path).read_text().splitlines()]
    assert on_disk == result.events
    # run.end totals agree with the returned stats object.
    end = next(e for e in result.events if e["name"] == "run.end")
    assert end["attrs"]["rays_total"] == result.stats.total
    assert end["attrs"]["computed_pixels"] == result.total_computed_pixels()


def test_no_telemetry_means_no_events():
    result = render(RenderRequest(engine="animation", **SMALL))
    assert result.events == [] and result.events_path is None


def test_farm_profile_dir_produces_mergeable_profiles(tmp_path):
    from repro.telemetry import merge_profiles

    result = render(
        RenderRequest(
            engine="farm", executor="serial", n_workers=1, mode="sequence",
            telemetry=True, profile_dir=tmp_path / "prof", **SMALL,
        )
    )
    profs = sorted((tmp_path / "prof").glob("*.prof"))
    assert profs, "each task should leave a .prof file"
    assert merge_profiles(tmp_path / "prof") is not None
    names = {e["name"] for e in result.events}
    assert "profile" in names


# -- the CLI surface -------------------------------------------------------------
def test_cli_telemetry_subcommand(tmp_path, capsys):
    from repro.cli import main

    run_dir = tmp_path / "run"
    render(
        RenderRequest(engine="farm", executor="thread", n_workers=2,
                      telemetry=True, run_dir=run_dir, **SMALL)
    )
    assert main(["telemetry", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "telemetry report" in out
    assert "rays by kind" in out
    assert "per-worker utilization" in out
    assert main(["telemetry", str(run_dir / "events.jsonl")]) == 0


def test_cli_simulate_subcommand(capsys):
    from repro.cli import main

    rc = main(
        ["simulate", "newton", "--frames", "3", "--width", "48", "--height", "36",
         "--grid", "12", "--strategy", "frame-division-fc"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "frame-division+fc" in out
    assert "virtual seconds" in out
