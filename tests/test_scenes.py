"""Tests for the built-in workloads: object inventories and motion."""

import numpy as np
import pytest

from repro.geometry import Cylinder, Plane, Sphere
from repro.scene import split_coherent_sequences
from repro.scenes import (
    CradleRig,
    bounce_position,
    brick_room_animation,
    brick_room_scene,
    cradle_angles,
    newton_animation,
    newton_scene,
)


# -- Newton ---------------------------------------------------------------------
def test_newton_inventory_matches_paper():
    """The paper: "one plane, five spheres, and sixteen cylinders"."""
    scene = newton_scene()
    assert sum(isinstance(o, Plane) for o in scene.objects) == 1
    assert sum(isinstance(o, Sphere) for o in scene.objects) == 5
    assert sum(isinstance(o, Cylinder) for o in scene.objects) == 16
    assert len(scene.objects) == 22


def test_newton_camera_stationary():
    anim = newton_animation(n_frames=6, width=32, height=24)
    assert split_coherent_sequences(anim) == [(0, 6)]


def test_newton_only_end_marbles_move():
    anim = newton_animation(n_frames=10, width=32, height=24)
    s0, s5 = anim.scene_at(0), anim.scene_at(5)
    moved = set()
    for a, b in zip(s0.objects, s5.objects):
        if not np.allclose(a.transform.m, b.transform.m):
            moved.add(a.name)
    movable = {"marble0", "marble4", "string0a", "string0b", "string4a", "string4b"}
    assert moved <= movable
    assert moved  # something does move


def test_newton_marble_stays_on_pendulum_arc():
    rig = CradleRig()
    anim = newton_animation(n_frames=12, width=32, height=24, rig=rig)
    pivot = np.array([rig.marble_rest_x(0), rig.rail_height, 0.0])
    for f in range(12):
        ball = anim.scene_at(f).object_by_name("marble0")
        center = ball.bounds().center
        dist = np.linalg.norm(center - pivot)
        assert dist == pytest.approx(rig.pendulum_length, rel=1e-6)


def test_newton_strings_follow_marble():
    anim = newton_animation(n_frames=8, width=32, height=24)
    for f in (0, 3, 7):
        scene = anim.scene_at(f)
        ball_center = scene.object_by_name("marble0").bounds().center
        string = scene.object_by_name("marble0".replace("marble", "string") + "a")
        # The string's bounds must reach (approximately) the ball center.
        b = string.bounds().expanded(0.1)
        assert b.contains_point(ball_center[None])[0]


def test_cradle_angles_cycle():
    theta0, omega = 0.5, 1.0
    quarter = (np.pi / 2) / omega
    # Start: left raised, right at rest.
    tl, tr = cradle_angles(0.0, theta0, omega)
    assert tl == pytest.approx(theta0) and tr == 0.0
    # At the impact instant both are at 0.
    tl, tr = cradle_angles(quarter, theta0, omega)
    assert tl == pytest.approx(0.0, abs=1e-12) and tr == pytest.approx(0.0, abs=1e-9)
    # Mid right swing: right at full amplitude.
    tl, tr = cradle_angles(2 * quarter, theta0, omega)
    assert tl == 0.0 and tr == pytest.approx(theta0)
    # Full cycle returns to the start.
    tl, tr = cradle_angles(4 * quarter, theta0, omega)
    assert tl == pytest.approx(theta0) and tr == pytest.approx(0.0, abs=1e-9)


def test_cradle_angles_never_negative_and_bounded():
    for t in np.linspace(0, 20, 200):
        tl, tr = cradle_angles(float(t), 0.6, 1.3)
        assert -1e-12 <= tl <= 0.6 + 1e-12
        assert -1e-12 <= tr <= 0.6 + 1e-12
        # At most one end marble is swinging at a time.
        assert tl < 1e-9 or tr < 1e-9


def test_cradle_angles_validation():
    with pytest.raises(ValueError):
        cradle_angles(0.0, -1.0, 1.0)
    with pytest.raises(ValueError):
        cradle_angles(0.0, 1.0, 0.0)


def test_newton_renders_with_reflections():
    from repro.render import RayTracer

    scene = newton_scene(width=48, height=36)
    _, res = RayTracer(scene).render()
    assert res.stats.reflected > 0  # chrome marbles
    assert res.stats.shadow > 0


# -- brick room -----------------------------------------------------------------
def test_brick_room_inventory():
    scene = brick_room_scene()
    assert sum(isinstance(o, Plane) for o in scene.objects) == 5
    assert sum(isinstance(o, Sphere) for o in scene.objects) == 1


def test_brick_room_ball_moves_and_bounces():
    anim = brick_room_animation(n_frames=14, width=32, height=24, frames_per_bounce=6.0)
    ys = []
    for f in range(14):
        ys.append(anim.scene_at(f).object_by_name("ball").bounds().center[1])
    ys = np.array(ys)
    # The ball's height varies (it bounces)...
    assert ys.max() - ys.min() > 0.5
    # ...and never penetrates the floor.
    assert np.all(ys >= 0.7 - 1e-9)


def test_bounce_position_periodicity():
    p0 = bounce_position(0.0)
    p1 = bounce_position(18.0)  # 18 = lcm of the 6- and 9-period sweeps... x18
    np.testing.assert_allclose(p0[1], p1[1], atol=1e-9)  # height repeats per bounce


def test_brick_room_refracts():
    from repro.render import RayTracer

    scene = brick_room_scene(width=48, height=36)
    _, res = RayTracer(scene).render()
    assert res.stats.refracted > 0  # the glass ball
