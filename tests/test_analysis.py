"""Tests for coherence analytics."""

import numpy as np
import pytest

from repro.analysis import (
    coherence_breakeven,
    cost_image,
    dirty_cost_bias,
    dirty_fraction_series,
    dirty_ray_fraction_series,
    summarize_oracle,
)


def test_dirty_fraction_series(tiny_oracle):
    s = dirty_fraction_series(tiny_oracle)
    assert s.shape == (tiny_oracle.n_frames,)
    assert s[0] == 1.0
    assert np.all((s[1:] > 0) & (s[1:] < 1))


def test_dirty_ray_fraction_series(tiny_oracle):
    s = dirty_ray_fraction_series(tiny_oracle)
    assert s[0] == 1.0
    assert np.all((s[1:] > 0) & (s[1:] <= 1))
    # Ray fraction and pixel fraction agree on sign of savings.
    p = dirty_fraction_series(tiny_oracle)
    assert np.all(s[1:] < 1.0) and np.all(p[1:] < 1.0)


def test_cost_image(tiny_oracle):
    img = cost_image(tiny_oracle, 0)
    assert img.shape == (tiny_oracle.height, tiny_oracle.width)
    assert img.min() >= 1  # every pixel fired at least its camera ray
    with pytest.raises(IndexError):
        cost_image(tiny_oracle, 99)


def test_dirty_cost_bias(tiny_oracle):
    b = dirty_cost_bias(tiny_oracle, 1)
    assert b > 0
    with pytest.raises(ValueError):
        dirty_cost_bias(tiny_oracle, 0)


def test_breakeven():
    assert coherence_breakeven(0.0) == 1.0
    assert coherence_breakeven(0.12) == pytest.approx(1 / 1.12)
    with pytest.raises(ValueError):
        coherence_breakeven(-0.1)


def test_summarize(tiny_oracle):
    s = summarize_oracle(tiny_oracle)
    assert s["n_frames"] == tiny_oracle.n_frames
    assert 0 < s["mean_dirty_fraction"] < 1
    assert s["ray_reduction"] > 1
    assert 0 <= s["frames_beyond_breakeven"] <= tiny_oracle.n_frames - 1
    # The Newton workload never exceeds breakeven: coherence always pays.
    assert s["frames_beyond_breakeven"] == 0
