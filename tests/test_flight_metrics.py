"""repro.obs flight recorder + metrics plane: black boxes and percentiles.

Three layers, cheapest first: seeded-random property tests pin the
mergeable histogram's two contracts (``merge(a, b)`` is indistinguishable
from ingesting the concatenation, and every quantile stays within the
advertised relative error across ~1k random distributions); unit tests
cover the EWMA straggler detector, the metrics plane's record routing and
Prometheus exposition, the flight-recorder ring/dump/stitch cycle, and
the connection-refused retry in ``fetch_status``; and one real TCP
loopback farm run kills a worker daemon mid-frame and requires the black
box it leaves behind to land, parse, and stitch into the master's trace
with the victim's final in-flight task recovered and zero orphan spans.

No hypothesis dependency: the property tests drive ``random.Random``
with fixed seeds, so every trial is reproducible from the failure
message alone.
"""

from __future__ import annotations

import json
import random
import socket
import sys
import threading
import time
import urllib.error
from pathlib import Path

import pytest

from repro.net.master import TcpTransport
from repro.obs import (
    EXPOSITION_CONTENT_TYPE,
    FlightRecorder,
    MetricsPlane,
    RunLedger,
    StatusServer,
    StragglerDetector,
    blackbox_filename,
    chrome_trace,
    fetch_status,
    find_orphan_spans,
    open_span_records,
    prometheus_name,
    read_blackbox,
    stitch_blackbox,
)
from repro.runtime import AnimationSpec, LocalRenderFarm
from repro.sched import make_policy
from repro.telemetry import (
    SCHEMA_VERSION,
    InMemorySink,
    LogHistogram,
    Telemetry,
    validate_events,
)
from repro.telemetry.hist import _EXACT_CAP


# -- histogram property tests ------------------------------------------------------
def _draw(rng: random.Random, kind: str, n: int) -> list[float]:
    if kind == "uniform":
        return [rng.uniform(1e-4, 100.0) for _ in range(n)]
    if kind == "exponential":
        return [rng.expovariate(1.0 / 5.0) + 1e-9 for _ in range(n)]
    if kind == "lognormal":
        return [rng.lognormvariate(0.0, 2.0) for _ in range(n)]
    if kind == "tiny":  # sub-second latencies, the common real workload
        return [rng.uniform(1e-6, 0.25) for _ in range(n)]
    raise AssertionError(kind)


_KINDS = ("uniform", "exponential", "lognormal", "tiny")


def _ingest(values, rel_err=None) -> LogHistogram:
    h = LogHistogram() if rel_err is None else LogHistogram(rel_err=rel_err)
    for v in values:
        h.add(v)
    return h


def test_histogram_merge_equals_ingest_concatenation():
    """merge(a, b) must be indistinguishable from ingesting a ++ b.

    Sizes straddle the exact-sample cap on purpose, so the property holds
    through the exact -> bucketed degradation, not just on one side.
    """
    rng = random.Random(0xF11)
    sizes = (0, 1, 3, 40, _EXACT_CAP // 2, _EXACT_CAP, _EXACT_CAP + 1, 700)
    for trial in range(200):
        kind = _KINDS[trial % len(_KINDS)]
        na, nb = rng.choice(sizes), rng.choice(sizes)
        vals_a = _draw(rng, kind, na)
        vals_b = _draw(rng, kind, nb)
        merged = _ingest(vals_a).merge(_ingest(vals_b))
        concat = _ingest(vals_a + vals_b)
        ctx = f"trial={trial} kind={kind} na={na} nb={nb}"
        assert merged.count == concat.count, ctx
        assert merged.zeros == concat.zeros, ctx
        assert merged.vmin == concat.vmin and merged.vmax == concat.vmax, ctx
        assert merged.buckets == concat.buckets, ctx
        # float addition order differs between the two folds
        assert merged.total == pytest.approx(concat.total, rel=1e-9), ctx
        # exactness must degrade identically (samples live or die together)
        assert (merged._samples is None) == (concat._samples is None), ctx
        if merged._samples is not None:
            assert sorted(merged._samples) == sorted(concat._samples), ctx
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert merged.quantile(q) == pytest.approx(
                concat.quantile(q), rel=1e-12, abs=1e-15
            ), f"{ctx} q={q}"


def test_histogram_quantile_relative_error_bound():
    """Every quantile within rel_err of the true order statistic, ~1k
    random distributions (positive values; zeros get their own test)."""
    rng = random.Random(0xB0B)
    n_trials = 1000
    for trial in range(n_trials):
        kind = _KINDS[trial % len(_KINDS)]
        rel_err = 0.05 if trial % 3 == 0 else 0.01
        n = rng.randint(1, 600) if trial % 2 else rng.randint(_EXACT_CAP + 1, 2000)
        vals = _draw(rng, kind, n)
        h = _ingest(vals, rel_err=rel_err)
        ordered = sorted(vals)
        for q in (0.5, 0.95, 0.99):
            true = ordered[min(n - 1, int(q * n))]
            est = h.quantile(q)
            tol = rel_err * true * (1.0 + 1e-9) + 1e-12
            assert abs(est - true) <= tol, (
                f"trial={trial} kind={kind} n={n} rel_err={rel_err} q={q}: "
                f"est={est!r} true={true!r}"
            )


def test_histogram_zeros_empty_and_merge_errors():
    empty = LogHistogram()
    assert empty.count == 0 and empty.quantile(0.5) == 0.0 and empty.mean == 0.0
    h = _ingest([0.0, 0.0, -1.5, 2.0, 4.0])
    assert h.zeros == 3 and h.count == 5
    assert h.quantile(0.0) == -1.5  # exact while the sample buffer lives
    assert h.quantile(1.0) == 4.0
    with pytest.raises(TypeError):
        h.merge({"count": 1})
    with pytest.raises(ValueError):
        h.merge(LogHistogram(rel_err=0.05))
    with pytest.raises(ValueError):
        LogHistogram(rel_err=1.5)


def test_histogram_digest_round_trips_through_json():
    rng = random.Random(7)
    for n in (5, _EXACT_CAP + 10):  # exact and degraded forms
        h = _ingest(_draw(rng, "lognormal", n) + [0.0])
        wire = json.loads(json.dumps(h.to_dict()))  # the RESULT-frame path
        back = LogHistogram.from_dict(wire)
        assert back.count == h.count and back.zeros == h.zeros
        assert back.buckets == h.buckets
        assert ("samples" in wire) == (h._samples is not None)
        for q in (0.5, 0.95, 0.99):
            assert back.quantile(q) == pytest.approx(h.quantile(q), rel=1e-12)
        # a digest is still mergeable after the round trip
        assert LogHistogram.from_dict(wire).merge(back).count == 2 * h.count
    summary = h.summary()
    assert set(summary) == {"min", "max", "mean", "p50", "p95", "p99", "rel_err", "digest"}


def test_prometheus_name_sanitization():
    assert prometheus_name("task.duration") == "repro_task_duration"
    assert prometheus_name("dfb.tile.nbytes") == "repro_dfb_tile_nbytes"
    assert prometheus_name("9weird") == "repro_m_9weird"


# -- straggler detector ------------------------------------------------------------
def test_straggler_detector_flags_and_recovers_with_valid_events():
    sink = InMemorySink()
    tel = Telemetry(sinks=(sink,))
    det = StragglerDetector(alpha=0.3, ratio=2.0, recover_ratio=1.5, min_samples=4)
    flips: list[str] = []

    def cycle(slow: float, rounds: int) -> None:
        for _ in range(rounds):
            for worker, dur in (("w0", slow), ("w1", 1.0), ("w2", 1.0), ("w3", 1.0)):
                flip = det.observe(worker, dur, telemetry=tel)
                if flip:
                    flips.append(flip)

    cycle(1.0, 2)  # warm-up: everyone equal, nothing may fire
    assert flips == [] and det.stragglers == set()
    cycle(20.0, 30)  # w0 turns 20x slower than the farm
    assert flips == ["straggler"] and det.state("w0") == "straggler"
    cycle(1.0, 30)  # and comes back under the hysteresis ratio
    assert flips == ["straggler", "recovered"] and det.state("w0") == "ok"
    assert det.stragglers == set()
    tel.close()
    validate_events(sink.events)
    names = [r["name"] for r in sink.events]
    assert names == ["health.straggler", "health.recovered"]
    for rec in sink.events:
        assert rec["attrs"]["worker"] == "w0"
        assert rec["attrs"]["ewma"] > 0 and rec["attrs"]["farm"] > 0


def test_straggler_detector_min_samples_and_constructor_guards():
    det = StragglerDetector(min_samples=5, ratio=1.2, recover_ratio=1.1)
    # far beyond the ratio, but under min_samples: must stay silent
    for _ in range(2):
        assert det.observe("fast", 1.0) is None
        assert det.observe("slow", 50.0) is None
    assert det.stragglers == set()
    with pytest.raises(ValueError):
        StragglerDetector(alpha=0.0)
    with pytest.raises(ValueError):
        StragglerDetector(ratio=2.0, recover_ratio=3.0)  # no hysteresis


# -- metrics plane -----------------------------------------------------------------
def _task_span(worker: str, dur: float, t: float = 0.0) -> dict:
    return {
        "type": "span", "name": "task", "t": t, "dur": dur, "span": f"{worker}:{t}",
        "parent": None,
        "attrs": {"worker": worker, "mode": "frame", "frame0": 0, "frame1": 1,
                  "region": 0, "rays": 0, "n_computed": 0, "attempt": 1},
    }


def test_metrics_plane_routes_records_into_exposition():
    plane = MetricsPlane(detector=False)
    plane.emit(_task_span("w0", 0.5))
    plane.emit(_task_span("w1", 0.25, t=1.0))
    plane.emit({"type": "event", "name": "net.pong", "t": 2.0,
                "attrs": {"worker": "w0", "rtt": 0.003}})
    plane.emit({"type": "event", "name": "net.result", "t": 2.5,
                "attrs": {"worker": "w0", "seq": 0, "nbytes": 100,
                          "compressed": True, "duration": 0.5}})
    plane.emit({"type": "event", "name": "task.attempt", "t": 3.0,
                "attrs": {"task": "t0", "attempt": 1, "outcome": "ok",
                          "duration": 0.4, "started": 2.6}})
    plane.emit({"type": "event", "name": "dfb.tile", "t": 3.5,
                "attrs": {"worker": "w1", "seq": 1, "frame": 0, "x0": 0, "y0": 0,
                          "x1": 8, "y1": 8, "nbytes": 192}})
    plane.emit({"type": "event", "name": "net.worker.lost", "t": 4.0,
                "attrs": {"worker": "w1", "reason": "died", "seq": 1, "blackbox": ""}})
    for _ in range(2):
        plane.emit({"type": "counter", "name": "rays.total", "t": 5.0, "value": 10})

    hists = plane.histograms()
    assert hists["task.duration"].count == 2
    assert hists["net.rtt"].count == 1
    assert hists["net.result.duration"].count == 1
    assert hists["task.attempt.duration"].count == 1
    assert hists["dfb.tile.nbytes"].count == 1
    assert plane.health() == {"w0": "ok", "w1": "lost"}

    body, ctype = plane.exposition()
    assert ctype == EXPOSITION_CONTENT_TYPE
    text = body.decode("utf-8")
    assert '# TYPE repro_task_duration summary' in text
    assert 'repro_task_duration{quantile="0.5"}' in text
    assert 'repro_task_duration{quantile="0.95"}' in text
    assert 'repro_task_duration{quantile="0.99"}' in text
    assert "repro_task_duration_count 2" in text
    assert 'repro_worker_health{worker="w0"} 0' in text
    assert 'repro_worker_health{worker="w1"} 2' in text
    assert "repro_rays_total_total 20" in text
    assert "repro_telemetry_records_total 9" in text
    assert plane.route() == (body, ctype)


def test_metrics_plane_folds_foreign_digest_but_skips_owned():
    plane = MetricsPlane(detector=False)
    plane.emit(_task_span("w0", 0.5))
    digest = _ingest([1.0] * 100).to_dict()
    flush = {"type": "histogram", "name": "task.duration", "t": 9.0, "value": 100,
             "attrs": {"digest": digest}}
    plane.emit(flush)  # owned series: the plane already folded those spans
    assert plane.histograms()["task.duration"].count == 1
    foreign = dict(flush, name="worker.render.duration")
    plane.emit(foreign)
    assert plane.histograms()["worker.render.duration"].count == 100
    plane.emit(dict(foreign))  # second digest merges associatively
    assert plane.histograms()["worker.render.duration"].count == 200
    # incompatible rel_err and malformed digests are dropped, not fatal
    bad = dict(foreign, attrs={"digest": _ingest([1.0], rel_err=0.05).to_dict()})
    plane.emit(bad)
    plane.emit(dict(foreign, attrs={"digest": "not-a-dict"}))
    plane.emit(dict(foreign, attrs={}))
    assert plane.histograms()["worker.render.duration"].count == 200


def test_metrics_plane_detector_emits_into_bound_session():
    """The usual arrangement: the plane is a sink of the session it binds,
    so health.* events re-enter the stream the ledger also folds."""
    sink = InMemorySink()
    ledger = RunLedger()
    tel = Telemetry(sinks=(sink, ledger))
    plane = MetricsPlane(
        detector=StragglerDetector(alpha=0.3, ratio=2.0, recover_ratio=1.5,
                                   min_samples=4)
    ).bind(tel)
    tel.sinks.append(plane)
    tel.emit({"type": "event", "name": "net.worker.join", "t": 0.0,
              "attrs": {"worker": "w0", "host": "localhost", "cores": 1, "score": 1.0}})
    t = 0.0
    for round_i in range(40):
        slow = 20.0 if round_i >= 2 else 1.0
        for worker, dur in (("w0", slow), ("w1", 1.0), ("w2", 1.0), ("w3", 1.0)):
            tel.emit(_task_span(worker, dur, t=t))
            t += 1.0
        if any(r["name"] == "health.straggler" for r in sink.events):
            break
    tel.close()
    validate_events(sink.events)
    straggles = [r for r in sink.events if r["name"] == "health.straggler"]
    assert straggles and straggles[0]["attrs"]["worker"] == "w0"
    assert plane.health()["w0"] == "straggler"
    rows = {w["worker"]: w for w in ledger.snapshot()["workers"]}
    assert rows["w0"]["health"] == "straggler"


def test_ledger_folds_health_and_loss_blackbox_pointer():
    ticks = iter(range(10**6))
    ledger = RunLedger(clock=lambda: float(next(ticks)))  # defeat snapshot TTL cache
    for w in ("w0", "w1"):
        ledger.emit({"type": "event", "name": "net.worker.join", "t": 0.0,
                     "attrs": {"worker": w, "host": "h", "cores": 1, "score": 1.0}})
    ledger.emit({"type": "event", "name": "health.straggler", "t": 1.0,
                 "attrs": {"worker": "w0", "ewma": 5.0, "farm": 1.0, "ratio": 5.0}})
    rows = {w["worker"]: w for w in ledger.snapshot()["workers"]}
    assert rows["w0"]["health"] == "straggler" and rows["w1"]["health"] == "ok"
    ledger.emit({"type": "event", "name": "health.recovered", "t": 2.0,
                 "attrs": {"worker": "w0", "ewma": 1.2, "farm": 1.0, "ratio": 1.2}})
    ledger.emit({"type": "event", "name": "net.worker.lost", "t": 3.0,
                 "attrs": {"worker": "w1", "reason": "heartbeat", "seq": 7,
                           "blackbox": "/tmp/blackbox_worker_42.jsonl"}})
    snap = ledger.snapshot()
    rows = {w["worker"]: w for w in snap["workers"]}
    assert rows["w0"]["health"] == "ok" and rows["w1"]["health"] == "lost"
    assert snap["losses"][-1]["blackbox"] == "/tmp/blackbox_worker_42.jsonl"
    # recovery events never resurrect a lost worker
    ledger.emit({"type": "event", "name": "health.recovered", "t": 4.0,
                 "attrs": {"worker": "w1", "ewma": 1.0, "farm": 1.0, "ratio": 1.0}})
    rows = {w["worker"]: w for w in ledger.snapshot()["workers"]}
    assert rows["w1"]["health"] == "lost"


def test_chrome_trace_emits_histogram_counter_tracks():
    summary = _ingest([0.1, 0.2, 0.4, 0.8]).summary()
    events = [{"type": "histogram", "name": "task.duration", "t": 1.0, "value": 4,
               "attrs": summary}]
    counters = [e for e in chrome_trace(events)["traceEvents"] if e.get("ph") == "C"]
    by_name = {e["name"]: e for e in counters}
    assert "task.duration/p50" in by_name and "task.duration/p95" in by_name
    assert by_name["task.duration/p50"]["args"]["value"] == pytest.approx(summary["p50"])
    assert by_name["task.duration/p95"]["cat"] == "histogram"


# -- fetch_status retry ------------------------------------------------------------
class _Snap:
    def snapshot(self):
        return {"alive": True}


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def test_fetch_status_retries_through_slow_server_start():
    port = _free_port()
    server = StatusServer(_Snap(), port=port)

    def late_start():
        time.sleep(0.4)
        server.start()

    t = threading.Thread(target=late_start, daemon=True)
    t.start()
    try:
        # first attempts hit a refused socket; the doubling retry outlives
        # the 0.4 s startup gap
        snap = fetch_status(f"127.0.0.1:{port}", retries=6, retry_delay=0.05)
        assert snap == {"alive": True}
    finally:
        t.join()
        server.stop()


def test_fetch_status_raises_after_exhausting_retries():
    port = _free_port()
    t0 = time.perf_counter()
    with pytest.raises(urllib.error.URLError):
        fetch_status(f"127.0.0.1:{port}", retries=2, retry_delay=0.01)
    assert time.perf_counter() - t0 < 5.0  # bounded, not an infinite poll


# -- flight recorder ---------------------------------------------------------------
def test_flight_recorder_ring_dump_and_torn_line(tmp_path):
    rec = FlightRecorder("master", tmp_path, capacity=4)
    seen = []
    rec.hook = seen.append
    rec.install(signals=False)
    tel = Telemetry()
    try:
        for i in range(10):
            tel.event("net.pong", worker="w0", rtt=0.001 * i)
        rec.note_frame("send", "ASSIGN", 128)
        path = rec.dump("drill")
    finally:
        rec.uninstall()
        tel.close()
    assert len(seen) == 10  # the hook sees every tapped record, ring or not
    assert path == tmp_path / blackbox_filename("master", rec.pid)
    assert rec.dumped_path == path
    records = read_blackbox(path)
    meta = records[0]
    assert meta["type"] == "blackbox"
    assert meta["attrs"]["role"] == "master" and meta["attrs"]["reason"] == "drill"
    assert meta["attrs"]["n_ring"] == 4  # ring capacity, oldest fell off
    ring = records[1:]
    assert ring[-1]["type"] == "wire" and ring[-1]["attrs"]["nbytes"] == 128
    # a dump torn mid-write keeps the parsed prefix
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"type":"event","name"')
    assert read_blackbox(path) == records
    # no out_dir configured -> records still available, dump is a no-op
    boxless = FlightRecorder("worker")
    assert boxless.dump("x") is None
    assert boxless.records("x")[0]["attrs"]["reason"] == "x"


def test_open_spans_synthesized_at_dump_time():
    rec = FlightRecorder("worker")
    rec.install(signals=False)
    tel = Telemetry(run_id="r1")
    try:
        with tel.span("task", worker="w0", mode="frame", frame0=0, frame1=1,
                      region=0, rays=0, n_computed=0, attempt=1) as sp:
            payload = rec.records("mid-task")
            open_recs = [r for r in payload if r.get("open") and r["name"] == "task"
                         and r.get("span") == sp.span_id]
            assert len(open_recs) == 1
            rec_open = open_recs[0]
            assert rec_open["v"] == SCHEMA_VERSION and rec_open["run"] == "r1"
            assert rec_open["dur"] >= 0.0
            assert rec_open["attrs"]["worker"] == "w0"
            assert open_span_records(t_now=tel.now())  # module-level helper agrees
    finally:
        rec.uninstall()
        tel.close()
    # once the span closed, nothing synthesizes for it any more
    assert not [r for r in rec.records() if r.get("open") and r.get("span") == sp.span_id]


def test_multiple_recorders_share_one_tap():
    rec_a = FlightRecorder("service").install(signals=False)
    rec_b = FlightRecorder("master").install(signals=False)
    tel = Telemetry()
    try:
        tel.event("net.pong", worker="w0", rtt=0.001)
        assert len(rec_a.records()) >= 2 and len(rec_b.records()) >= 2
        rec_a.uninstall()
        tel.event("net.pong", worker="w0", rtt=0.002)
        n_after = len(rec_b.records())
        rec_b.uninstall()
        tel.event("net.pong", worker="w0", rtt=0.003)  # tap cleared: not recorded
        assert len(rec_b.records()) == n_after
    finally:
        rec_a.uninstall()
        rec_b.uninstall()
        tel.close()


def test_install_restores_excepthook_on_uninstall():
    prev = sys.excepthook
    rec = FlightRecorder("master").install(signals=True)
    try:
        assert sys.excepthook is not prev
    finally:
        rec.uninstall()
    assert sys.excepthook is prev


def test_stitch_blackbox_dedups_offsets_and_filters():
    events = [
        {"type": "span", "name": "task", "t": 1.0, "dur": 0.5, "span": "w1:1",
         "parent": None, "attrs": {}},
        {"type": "event", "name": "net.pong", "t": 1.0, "attrs": {}},
    ]
    dump = [
        {"type": "blackbox", "name": "meta", "t": 0.0, "attrs": {}},
        {"type": "wire", "name": "wire.send", "t": 0.1, "attrs": {}},
        {"type": "span", "name": "task", "t": 1.0, "dur": 0.5, "span": "w1:1",
         "parent": None, "attrs": {}},  # already shipped: dedup by span id
        {"type": "span", "name": "task", "t": 5.0, "dur": 0.1, "span": "w1:2",
         "parent": None, "attrs": {}, "open": True},
        {"type": "event", "name": "net.pong", "t": 1.0, "attrs": {}},  # dup point
    ]
    merged, n_added = stitch_blackbox(events, dump)
    assert n_added == 1 and len(merged) == 3
    assert len(events) == 2  # input untouched
    assert not [r for r in merged if r["type"] in ("wire", "blackbox")]
    # a clock offset makes the "duplicate" point event land elsewhere
    merged2, n2 = stitch_blackbox(events, dump, t_offset=0.25)
    assert n2 == 2
    assert {r["t"] for r in merged2 if r["name"] == "net.pong"} == {1.0, 1.25}
    assert [r for r in merged2 if r.get("span") == "w1:2"][0]["t"] == 5.25


# -- the wire: MSG_BLACKBOX shipping + the full kill round trip --------------------
def test_worker_ships_predecessor_blackbox_over_wire(tmp_path):
    """A dump left by a dead worker is shipped over MSG_BLACKBOX by the
    next worker to join from the same run directory, and the master
    re-persists it and narrates the arrival as ``obs.blackbox``."""
    box = tmp_path / blackbox_filename("worker", 99999)
    meta = {"type": "blackbox", "name": "meta", "t": 0.0,
            "attrs": {"role": "worker", "pid": 99999, "reason": "sigterm", "n_ring": 1}}
    rec1 = {"type": "event", "name": "net.pong", "t": 0.25,
            "attrs": {"worker": "w0.99999", "rtt": 0.001}}
    box.write_text(json.dumps(meta) + "\n" + json.dumps(rec1) + "\n", encoding="utf-8")
    sink = InMemorySink()
    tel = Telemetry(sinks=(sink,))
    policy = make_policy("frame-division-nofc", 8, n_regions=2)
    out = TcpTransport(
        policy, "echo", lambda a, lane: (a.seq, lane), n_workers=2,
        startup_timeout=120.0, telemetry=tel, blackbox_dir=str(tmp_path),
    ).run()
    tel.close()
    assert len(out.results) == 16
    validate_events(sink.events)
    ships = [r for r in sink.events if r["name"] == "obs.blackbox"]
    shipped = [s for s in ships if s["attrs"]["pid"] == 99999]
    assert shipped, f"no obs.blackbox for the seeded dump in {ships}"
    attrs = shipped[0]["attrs"]
    assert attrs["role"] == "worker" and attrs["records"] >= 2
    persisted = Path(attrs["path"])
    assert persisted.exists()
    dump = read_blackbox(persisted)
    assert dump[0]["attrs"]["pid"] == 99999 and dump[1]["name"] == "net.pong"


def test_blackbox_round_trip_on_mid_frame_kill(tmp_path):
    """The acceptance drill: kill a TCP worker daemon mid-frame; its black
    box must land, parse, and stitch into the master trace with the final
    in-flight task span recovered and zero orphan spans."""
    spec = AnimationSpec.newton(n_frames=4, width=24, height=18)
    reference = LocalRenderFarm(spec, executor="serial",
                                grid_resolution=12).render_reference()
    sink = InMemorySink()
    tel = Telemetry(sinks=(sink,))
    farm = LocalRenderFarm(
        spec, n_workers=2, schedule="adaptive", transport="tcp",
        net_die_after_frames={0: 1}, blackbox_dir=tmp_path,
        grid_resolution=12, telemetry=tel,
    )
    out = farm.render()
    tel.close()
    assert out.n_crashes >= 1
    assert out.frames.tobytes() == reference.frames.tobytes()
    validate_events(sink.events)

    losses = [r for r in sink.events if r.get("name") == "net.worker.lost"]
    pointed = [r for r in losses if r["attrs"]["blackbox"]]
    assert pointed, f"no loss event carries a blackbox pointer: {losses}"
    box_path = Path(pointed[0]["attrs"]["blackbox"])
    assert box_path.exists()
    dump = read_blackbox(box_path)
    assert dump[0]["type"] == "blackbox"
    assert dump[0]["attrs"]["reason"] == "die-after-frames"
    assert dump[0]["attrs"]["role"] == "worker"

    merged, n_added = stitch_blackbox(sink.events, dump)
    assert n_added >= 1
    assert find_orphan_spans(merged) == []
    open_tasks = [r for r in merged if r.get("open") and r.get("name") == "task"]
    assert open_tasks, "the victim's in-flight task span was not recovered"
    validate_events(merged)
