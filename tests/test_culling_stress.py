"""Tests for bounds culling and the stress workloads."""

import numpy as np
import pytest

from repro.geometry import Plane, RayBatch, Sphere, TriangleMesh
from repro.render import RayTracer, SceneIntersector
from repro.rmath import normalize
from repro.scenes import (
    random_spheres_animation,
    random_spheres_scene,
    two_shot_animation,
)


def _mesh_at(center, radius=0.5):
    ring = np.array([[np.cos(a), np.sin(a), 0.0] for a in np.linspace(0, 2 * np.pi, 13)[:-1]])
    vertices = np.vstack([[0, 0, 1.0], [0, 0, -1.0], ring]) * radius + np.asarray(center)
    faces = np.array([[0, 2 + i, 2 + (i + 1) % 12] for i in range(12)])
    return TriangleMesh(vertices, faces)


def _batch(n=500, seed=0):
    rng = np.random.default_rng(seed)
    origins = rng.uniform(-6, 6, (n, 3))
    origins[:, 2] = -10.0
    dirs = normalize(rng.uniform(-0.4, 0.4, (n, 3)) + [0, 0, 1.0])
    return RayBatch(origins, dirs, np.arange(n), np.ones((n, 3)))


@pytest.fixture(scope="module")
def mixed_objects():
    rng = np.random.default_rng(5)
    objs = [Plane.from_normal((0, 1, 0), -7.0)]
    objs += [_mesh_at(rng.uniform(-5, 5, 3)) for _ in range(6)]
    objs += [Sphere.at(rng.uniform(-5, 5, 3), 0.4) for _ in range(6)]
    return objs


def test_culling_matches_flat_nearest(mixed_objects):
    batch = _batch()
    culled = SceneIntersector(mixed_objects, cull_bounds=True).nearest(batch)
    flat = SceneIntersector(mixed_objects, cull_bounds=False).nearest(batch)
    np.testing.assert_array_equal(culled.t, flat.t)
    np.testing.assert_array_equal(culled.obj_index, flat.obj_index)
    np.testing.assert_allclose(culled.normals, flat.normals)


def test_culling_matches_flat_shadow(mixed_objects):
    rng = np.random.default_rng(1)
    # Give some objects materials so transmissive filtering is exercised.
    from repro.materials import Material

    for i, o in enumerate(mixed_objects):
        o.material = Material.glass() if i % 3 == 0 else Material.matte((1, 1, 1))
    origins = rng.uniform(-5, 5, (300, 3))
    dirs = normalize(rng.uniform(-1, 1, (300, 3)) + 1e-3)
    dists = rng.uniform(2, 15, 300)
    a = SceneIntersector(mixed_objects, cull_bounds=True).shadow_attenuation(origins, dirs, dists)
    b = SceneIntersector(mixed_objects, cull_bounds=False).shadow_attenuation(origins, dirs, dists)
    np.testing.assert_allclose(a, b)


def test_auto_mode_culls_only_expensive(mixed_objects):
    inter = SceneIntersector(mixed_objects)
    flags = dict(zip((type(o).__name__ for o in mixed_objects), inter._cull))
    # Meshes get culled; spheres and the (infinite) plane never do.
    assert any(
        c for o, c in zip(mixed_objects, inter._cull) if isinstance(o, TriangleMesh)
    )
    assert not any(
        c for o, c in zip(mixed_objects, inter._cull) if isinstance(o, (Sphere, Plane))
    )


def test_cost_hints():
    assert Sphere.at((0, 0, 0), 1.0).intersect_cost_hint == 1.0
    assert _mesh_at((0, 0, 0)).intersect_cost_hint == 6.0  # 12 faces / 2


# -- stress scenes -----------------------------------------------------------------
def test_random_spheres_deterministic():
    a = random_spheres_scene(20, seed=7, width=32, height=24)
    b = random_spheres_scene(20, seed=7, width=32, height=24)
    for oa, ob in zip(a.objects, b.objects):
        np.testing.assert_array_equal(oa.transform.m, ob.transform.m)
    c = random_spheres_scene(20, seed=8, width=32, height=24)
    assert any(
        not np.array_equal(oa.transform.m, oc.transform.m)
        for oa, oc in zip(a.objects[1:], c.objects[1:])
    )


def test_random_spheres_renders():
    scene = random_spheres_scene(30, seed=2, width=48, height=36)
    _, res = RayTracer(scene).render()
    assert res.stats.camera == 48 * 36
    assert res.stats.shadow > 0


def test_random_spheres_animation_movers():
    anim = random_spheres_animation(n_frames=3, n_spheres=10, n_movers=2, width=32, height=24)
    s0, s2 = anim.scene_at(0), anim.scene_at(2)
    moved = [
        a.name
        for a, b in zip(s0.objects, s2.objects)
        if not np.array_equal(a.transform.m, b.transform.m)
    ]
    assert sorted(moved) == ["ball000", "ball001"]


def test_random_spheres_validation():
    with pytest.raises(ValueError):
        random_spheres_scene(0)
    with pytest.raises(ValueError):
        random_spheres_animation(n_spheres=5, n_movers=9)


def test_two_shot_camera_cut():
    anim = two_shot_animation(n_frames=6)
    from repro.scene import split_coherent_sequences

    assert split_coherent_sequences(anim) == [(0, 3), (3, 6)]
    with pytest.raises(ValueError):
        two_shot_animation(n_frames=4, cut_at=0)
