"""Behavioural tests for the wavefront tracer."""

import numpy as np
import pytest

from repro.geometry import Plane, Sphere
from repro.lighting import PointLight
from repro.materials import Finish, Material, SolidColor
from repro.render import RayTracer
from repro.scene import Camera, Scene


def _scene(objects, lights=None, background=(0.1, 0.2, 0.3), max_depth=5, wh=(16, 12)):
    cam = Camera(position=(0, 1, -6), look_at=(0, 1, 0), width=wh[0], height=wh[1])
    return Scene(
        camera=cam,
        objects=objects,
        lights=lights if lights is not None else [PointLight(np.array([3.0, 8.0, -4.0]), np.ones(3))],
        background=np.asarray(background, dtype=float),
        max_depth=max_depth,
    )


def test_empty_scene_is_background():
    scene = _scene([], lights=[])
    fb, res = RayTracer(scene).render()
    img = fb.as_image()
    np.testing.assert_allclose(img, np.broadcast_to([0.1, 0.2, 0.3], img.shape))
    assert res.stats.total == res.stats.camera == 16 * 12


def test_depth_limits_child_rays():
    mirror = Sphere.at((0, 1, 0), 1.0, material=Material.mirror())
    scene1 = _scene([mirror], max_depth=1)
    _, res1 = RayTracer(scene1).render()
    assert res1.stats.reflected == 0
    scene2 = _scene([mirror], max_depth=3)
    _, res2 = RayTracer(scene2).render()
    assert res2.stats.reflected > 0


def test_shadow_rays_fired_per_light():
    floor = Plane.from_normal((0, 1, 0), 0.0, material=Material.matte((1, 1, 1)))
    one = _scene([floor])
    _, res1 = RayTracer(one).render()
    two = _scene(
        [floor],
        lights=[
            PointLight(np.array([3.0, 8.0, -4.0]), np.ones(3)),
            PointLight(np.array([-3.0, 8.0, -4.0]), np.ones(3)),
        ],
    )
    _, res2 = RayTracer(two).render()
    assert res2.stats.shadow == 2 * res1.stats.shadow > 0


def test_mirror_shows_background():
    """A perfect mirror facing the camera reflects background color rays."""
    mirror_mat = Material(
        pigment=SolidColor((1, 1, 1)),
        finish=Finish(ambient=0.0, diffuse=0.0, specular=0.0, reflection=1.0),
    )
    ball = Sphere.at((0, 1, 0), 1.0, material=mirror_mat)
    scene = _scene([ball], lights=[], background=(0.25, 0.5, 0.75))
    fb, res = RayTracer(scene).render()
    # The center pixel hits the sphere head-on; reflection goes straight back
    # to the camera, escaping to the background.
    img = fb.as_image()
    center = img[6, 8]
    np.testing.assert_allclose(center, [0.25, 0.5, 0.75], atol=1e-9)
    assert res.stats.reflected > 0


def test_fully_transparent_sphere_passes_background():
    """transmission=1, ior=1: rays pass through unchanged (refraction is a
    no-op), so every pixel sees the background."""
    ghost = Material(
        pigment=SolidColor((1, 1, 1)),
        finish=Finish(ambient=0.0, diffuse=0.0, specular=0.0, transmission=1.0, ior=1.0),
    )
    ball = Sphere.at((0, 1, 0), 1.0, material=ghost)
    scene = _scene([ball], lights=[], background=(0.3, 0.6, 0.9))
    fb, res = RayTracer(scene).render()
    np.testing.assert_allclose(
        fb.as_image(), np.broadcast_to([0.3, 0.6, 0.9], (12, 16, 3)), atol=1e-9
    )
    assert res.stats.refracted > 0


def test_weight_cutoff_terminates_recursion():
    """Two parallel mirrors would recurse forever without depth/weight caps;
    with reflection 0.1 the weight dies after ~2 bounces."""
    dim_mirror = Material(
        pigment=SolidColor((1, 1, 1)),
        finish=Finish(ambient=0.0, diffuse=0.0, reflection=0.1),
    )
    a = Plane.from_normal((0, 0, -1), -3.0, material=dim_mirror)
    b = Plane.from_normal((0, 0, 1), -10.0, material=dim_mirror)
    scene = _scene([a, b], lights=[], max_depth=5)
    _, res = RayTracer(scene).render()
    # depth 5 would allow 4 reflection generations; weight cutoff stops at 2
    # (0.1^3 = 1e-3 < 1/255).
    assert 0 < res.stats.reflected < 3 * res.stats.camera


def test_chunk_size_does_not_change_image(simple_scene):
    fb1, res1 = RayTracer(simple_scene, chunk_size=64).render()
    fb2, res2 = RayTracer(simple_scene, chunk_size=100000).render()
    np.testing.assert_array_equal(fb1.data, fb2.data)
    assert res1.stats.total == res2.stats.total


def test_trace_subset_matches_full(simple_scene):
    tracer = RayTracer(simple_scene)
    full = tracer.trace_pixels(simple_scene.camera.pixel_grid())
    subset_ids = np.array([0, 100, 500, 1000, 1727])
    sub = RayTracer(simple_scene).trace_pixels(subset_ids)
    sel = np.searchsorted(full.pixel_ids, subset_ids)
    np.testing.assert_array_equal(sub.colors, full.colors[sel])
    np.testing.assert_array_equal(sub.rays_per_pixel, full.rays_per_pixel[sel])


def test_supersampling_reduces_to_center_for_flat_background():
    scene = _scene([], lights=[])
    fb1, res1 = RayTracer(scene).render(samples_per_axis=1)
    fb2, res2 = RayTracer(scene).render(samples_per_axis=2)
    np.testing.assert_allclose(fb1.data, fb2.data, atol=1e-12)
    assert res2.stats.camera == 4 * res1.stats.camera


def test_supersampling_smooths_edges(simple_scene):
    fb1, _ = RayTracer(simple_scene).render(samples_per_axis=1)
    fb3, _ = RayTracer(simple_scene).render(samples_per_axis=3)
    assert not np.array_equal(fb1.data, fb3.data)
    # Energy should be comparable (within a few percent).
    assert fb3.data.mean() == pytest.approx(fb1.data.mean(), rel=0.1)


def test_rays_per_pixel_accounting(simple_scene):
    tracer = RayTracer(simple_scene)
    res = tracer.trace_pixels(simple_scene.camera.pixel_grid())
    assert int(res.rays_per_pixel.sum()) == res.stats.total
    assert np.all(res.rays_per_pixel >= 1)  # every pixel fired its camera ray


def test_track_paths_produces_marks(simple_scene):
    tracer = RayTracer(simple_scene, track_paths=True)
    res = tracer.trace_pixels(simple_scene.camera.pixel_grid())
    assert res.mark_voxels.size > 0
    assert res.mark_voxels.shape == res.mark_pixels.shape
    # Every marked pixel is a real pixel; voxel ids are in range.
    assert res.mark_pixels.min() >= 0
    assert res.mark_pixels.max() < simple_scene.camera.n_pixels
    assert res.mark_voxels.min() >= 0
    assert res.mark_voxels.max() < tracer.grid.n_voxels


def test_no_tracking_no_marks(simple_scene):
    res = RayTracer(simple_scene).trace_pixels(np.arange(10))
    assert res.mark_voxels.size == 0


def test_determinism_across_runs(simple_scene):
    fb1, _ = RayTracer(simple_scene).render()
    fb2, _ = RayTracer(simple_scene).render()
    np.testing.assert_array_equal(fb1.data, fb2.data)


def test_invalid_chunk_size(simple_scene):
    with pytest.raises(ValueError):
        RayTracer(simple_scene, chunk_size=0)


def test_glass_sphere_refracts(simple_scene):
    _, res = RayTracer(simple_scene).render()
    assert res.stats.refracted > 0
    assert res.stats.reflected > 0
    assert res.stats.shadow > 0
