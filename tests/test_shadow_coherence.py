"""Tests for the shadow-coherence extension."""

import numpy as np
import pytest

from repro.coherence import CoherentRenderer, ShadowCoherentRenderer
from repro.render import RayTracer, ShadowCache
from repro.rmath import Transform
from repro.scene import FunctionAnimation
from repro.scenes import newton_animation


# -- ShadowCache unit behaviour --------------------------------------------------
def test_cache_lookup_store_roundtrip():
    c = ShadowCache(10, 2)
    c.store(np.array([3, 5]), 1, np.array([0.25, 0.75]))
    c.set_reusable(np.array([3]))
    vals, reuse = c.lookup(np.array([3, 5]), 1)
    np.testing.assert_array_equal(vals, [0.25, 0.75])
    np.testing.assert_array_equal(reuse, [True, False])


def test_cache_set_reusable_resets():
    c = ShadowCache(5, 1)
    c.set_reusable(np.array([0, 1]))
    c.set_reusable(np.array([4]))
    assert not c.reusable[0] and c.reusable[4]
    c.set_reusable(np.empty(0, dtype=np.int64))
    assert not c.reusable.any()


def test_cache_validation():
    with pytest.raises(ValueError):
        ShadowCache(0, 1)


def test_tracer_rejects_mismatched_cache(simple_scene):
    cache = ShadowCache(7, len(simple_scene.lights))
    with pytest.raises(ValueError, match="resolution"):
        RayTracer(simple_scene, shadow_cache=cache)
    cache2 = ShadowCache(simple_scene.camera.n_pixels, 99)
    with pytest.raises(ValueError, match="light count"):
        RayTracer(simple_scene, shadow_cache=cache2)


def test_tracer_rejects_supersampling_with_cache(simple_scene):
    cache = ShadowCache(simple_scene.camera.n_pixels, len(simple_scene.lights))
    tracer = RayTracer(simple_scene, shadow_cache=cache)
    with pytest.raises(ValueError, match="samples_per_axis"):
        tracer.trace_pixels(np.arange(4), samples_per_axis=2)


# -- mark segregation -----------------------------------------------------------
def test_marks_by_class_partition_total(simple_scene):
    tracer = RayTracer(simple_scene, track_paths=True)
    res = tracer.trace_pixels(simple_scene.camera.pixel_grid())
    total = sum(v.size for v, _ in res.marks_by_class.values())
    assert total == res.mark_voxels.size
    assert res.marks_by_class["camera"][0].size > 0
    assert res.marks_by_class["pshadow"][0].size > 0
    assert res.marks_by_class["secondary"][0].size > 0  # chrome + glass spawn children


# -- the renderer ----------------------------------------------------------------
@pytest.fixture(scope="module")
def shadow_anim():
    return newton_animation(n_frames=4, width=64, height=48)


def test_shadow_coherent_exactness(shadow_anim):
    r = ShadowCoherentRenderer(shadow_anim, grid_resolution=24)
    for f in range(shadow_anim.n_frames):
        r.render_next()
        full, _ = RayTracer(shadow_anim.scene_at(f)).render()
        np.testing.assert_array_equal(r.frame_image(), full.as_image())


def test_shadow_rays_actually_saved(shadow_anim):
    r = ShadowCoherentRenderer(shadow_anim, grid_resolution=24)
    base = CoherentRenderer(shadow_anim, grid_resolution=24)
    saved = 0
    for f in range(shadow_anim.n_frames):
        rep = r.render_next()
        brep = base.render_next()
        saved += rep.shadow_rays_saved
        # Same dirty sets, never more shadow rays than the base engine.
        assert rep.n_computed == brep.n_computed
        assert rep.stats.shadow <= brep.stats.shadow
        assert rep.stats.camera == brep.stats.camera
    assert saved > 0
    assert r.total_shadow_rays_saved == saved


def test_reusable_is_subset_of_dirty(shadow_anim):
    r = ShadowCoherentRenderer(shadow_anim, grid_resolution=24)
    r.render_next()
    scene_prev = shadow_anim.scene_at(0)
    scene_next = shadow_anim.scene_at(1)
    dirty, reusable, _ = r.predict(scene_prev, scene_next)
    assert np.all(np.isin(reusable, dirty))
    assert reusable.size < dirty.size  # the moving marble's own pixels re-fire


def test_full_invalidation_disables_reuse(simple_scene):
    """A light edit kills the cache for that frame."""
    from repro.lighting import PointLight

    def make(f):
        return Transform.identity()

    anim = FunctionAnimation(simple_scene, 3, motions={"matte": make})
    # Mutate the light between frames by wrapping scene_at.
    orig = anim.scene_at

    def scene_at(f):
        s = orig(f)
        if f == 2:
            s.lights = [PointLight(np.array([0.0, 9.0, -5.0]), np.ones(3))]
        return s

    anim.scene_at = scene_at
    r = ShadowCoherentRenderer(anim, grid_resolution=16)
    r.render_next()
    r.render_next()
    rep = r.render_next()  # light moved -> full recompute, no reuse
    assert rep.n_computed == simple_scene.camera.n_pixels
    assert rep.n_shadow_reusable == 0
    full, _ = RayTracer(anim.scene_at(2)).render()
    np.testing.assert_array_equal(r.frame_image(), full.as_image())


def test_region_restricted(shadow_anim):
    cam = shadow_anim.camera_at(0)
    region = np.arange(cam.n_pixels // 2)
    r = ShadowCoherentRenderer(shadow_anim, region=region, grid_resolution=24)
    for f in range(2):
        r.render_next()
    full, _ = RayTracer(shadow_anim.scene_at(1)).render()
    np.testing.assert_array_equal(r.framebuffer.gather(region), full.gather(region))


def test_run_and_stopiteration(shadow_anim):
    r = ShadowCoherentRenderer(shadow_anim, grid_resolution=16)
    reports = r.run()
    assert len(reports) == shadow_anim.n_frames
    with pytest.raises(StopIteration):
        r.render_next()


def test_invalid_ranges(shadow_anim):
    with pytest.raises(ValueError):
        ShadowCoherentRenderer(shadow_anim, first_frame=4, last_frame=4)
    with pytest.raises(ValueError):
        ShadowCoherentRenderer(shadow_anim, region=np.array([-1]))
