"""Tests for SimulationOutcome metrics and formatting."""

import pytest

from repro.parallel import SimulationOutcome, format_hms, load_imbalance


def _outcome(total=100.0, **kw):
    defaults = dict(
        strategy="test",
        n_frames=10,
        total_time=total,
        first_frame_time=5.0,
        frame_completion_times={0: 5.0},
        total_rays=1000,
        total_units=1120.0,
    )
    defaults.update(kw)
    return SimulationOutcome(**defaults)


def test_format_hms():
    assert format_hms(0) == "0:00:00"
    assert format_hms(61) == "0:01:01"
    assert format_hms(3661) == "1:01:01"
    assert format_hms(10551) == "2:55:51"  # the paper's column (1)
    with pytest.raises(ValueError):
        format_hms(-1)


def test_avg_frame_time():
    assert _outcome(total=100.0).avg_frame_time == 10.0


def test_speedup():
    base = _outcome(total=100.0)
    fast = _outcome(total=25.0)
    assert fast.speedup_vs(base) == 4.0
    with pytest.raises(ValueError):
        _outcome(total=0.0).speedup_vs(base)


def test_load_imbalance():
    assert load_imbalance({"a": 10.0, "b": 10.0}) == 1.0
    assert load_imbalance({"a": 30.0, "b": 10.0}) == pytest.approx(1.5)
    assert load_imbalance({}) == 1.0


def test_summary_fields():
    out = _outcome(machine_busy_seconds={"a": 50.0, "b": 40.0})
    s = out.summary()
    assert s["strategy"] == "test"
    assert s["total_time"] == "0:01:40"
    assert s["rays"] == 1000
    assert "imbalance" in s


def test_summary_no_first_frame():
    out = _outcome(first_frame_time=None)
    assert out.summary()["first_frame"] == "-"
