"""Tests for the animation cost oracle (built on a real tiny workload)."""

import numpy as np
import pytest

from repro.parallel import AnimationCostOracle
from repro.render import RayTracer


def test_oracle_dimensions(tiny_oracle, tiny_newton_animation):
    cam = tiny_newton_animation.camera_at(0)
    assert tiny_oracle.width == cam.width
    assert tiny_oracle.height == cam.height
    assert tiny_oracle.n_frames == tiny_newton_animation.n_frames
    assert tiny_oracle.full_cost.shape == (tiny_oracle.n_frames, cam.n_pixels)


def test_full_cost_matches_direct_render(tiny_oracle, tiny_newton_animation):
    scene = tiny_newton_animation.scene_at(2)
    res = RayTracer(scene).trace_pixels(scene.camera.pixel_grid())
    np.testing.assert_array_equal(tiny_oracle.full_cost[2], res.rays_per_pixel)


def test_dirty_sets_shape(tiny_oracle):
    assert tiny_oracle.dirty_sets[0].size == 0
    for f in range(1, tiny_oracle.n_frames):
        d = tiny_oracle.dirty_sets[f]
        assert d.size > 0  # the cradle moves every frame
        assert d.size < tiny_oracle.n_pixels  # but not everything changes
        assert np.all(np.diff(d) > 0)  # sorted unique


def test_full_rays_region(tiny_oracle):
    region = np.arange(100)
    assert tiny_oracle.full_rays(0, region) == int(tiny_oracle.full_cost[0][:100].sum())
    assert tiny_oracle.full_rays(0) == int(tiny_oracle.full_cost[0].sum())


def test_coherent_rays_le_full(tiny_oracle):
    for f in range(1, tiny_oracle.n_frames):
        rays, n_px = tiny_oracle.coherent_rays(f)
        assert rays <= tiny_oracle.full_rays(f)
        assert n_px == tiny_oracle.dirty_sets[f].size


def test_dirty_pixels_region_intersection(tiny_oracle):
    region = np.arange(0, tiny_oracle.n_pixels, 2)
    d = tiny_oracle.dirty_pixels(1, region)
    assert np.all(np.isin(d, region))
    assert np.all(np.isin(d, tiny_oracle.dirty_sets[1]))


def test_dirty_pixels_frame0_rejected(tiny_oracle):
    with pytest.raises(ValueError):
        tiny_oracle.dirty_pixels(0)


def test_chain_rays_decomposition(tiny_oracle):
    """A chain over [0, n) costs first-frame-full + coherent steps."""
    total = tiny_oracle.chain_rays(0, tiny_oracle.n_frames)
    expected = tiny_oracle.full_rays(0)
    for f in range(1, tiny_oracle.n_frames):
        expected += tiny_oracle.coherent_rays(f)[0]
    assert total == expected
    assert total == tiny_oracle.total_coherent_rays()


def test_coherent_cheaper_than_full(tiny_oracle):
    assert tiny_oracle.total_coherent_rays() < tiny_oracle.total_full_rays()


def test_region_partition_conserves_rays(tiny_oracle):
    """Summing chain costs over a disjoint block cover equals the
    whole-frame chain cost — the frame-division ray identity."""
    from repro.parallel import block_regions

    blocks = block_regions(tiny_oracle.width, tiny_oracle.height, 16, 16)
    total = sum(
        tiny_oracle.chain_rays(0, tiny_oracle.n_frames, b.pixels) for b in blocks
    )
    assert total == tiny_oracle.total_coherent_rays()


def test_mean_dirty_fraction(tiny_oracle):
    frac = tiny_oracle.mean_dirty_fraction()
    assert 0.0 < frac < 1.0


def test_save_load_roundtrip(tiny_oracle, tmp_path):
    path = tmp_path / "oracle.npz"
    tiny_oracle.save(path)
    loaded = AnimationCostOracle.load(path)
    np.testing.assert_array_equal(loaded.full_cost, tiny_oracle.full_cost)
    assert loaded.n_frames == tiny_oracle.n_frames
    for f in range(tiny_oracle.n_frames):
        np.testing.assert_array_equal(loaded.dirty_sets[f], tiny_oracle.dirty_sets[f])


def test_shape_validation():
    with pytest.raises(ValueError):
        AnimationCostOracle(
            width=4, height=4, n_frames=2, full_cost=np.zeros((2, 10)), dirty_sets=[np.empty(0)] * 2, grid_resolution=4
        )
    with pytest.raises(ValueError):
        AnimationCostOracle(
            width=4, height=4, n_frames=2, full_cost=np.zeros((2, 16)), dirty_sets=[np.empty(0)], grid_resolution=4
        )
