"""Tests for machine failures, Recv timeouts and the fault-tolerant master."""

import pytest

from repro.cluster import (
    Compute,
    Machine,
    Recv,
    Send,
    ThrashModel,
    VirtualPVM,
    ncsu_testbed,
)
from repro.parallel import (
    RenderFarmConfig,
    simulate_frame_division_fc,
    simulate_frame_division_fc_fault_tolerant,
    simulate_sequence_division_fc_fault_tolerant,
)

SPU = 1e-4
NO_THRASH = ThrashModel(alpha=0.0)
CFG = RenderFarmConfig()


# -- PVM failure primitives ----------------------------------------------------
def test_recv_timeout_fires():
    pvm = VirtualPVM([Machine("m", 1.0, 32)], sec_per_work_unit=0.01)
    got = []

    def waiter():
        msg = yield Recv(timeout=2.0)
        got.append(msg)

    pvm.spawn(waiter(), "m")
    end = pvm.run()
    assert got == [None]
    assert end == pytest.approx(2.0)


def test_recv_timeout_cancelled_by_message():
    pvm = VirtualPVM([Machine("m", 1.0, 32)], sec_per_work_unit=0.01)
    got = []

    def waiter():
        msg = yield Recv(timeout=5.0)
        got.append(msg.payload if msg else None)
        # A second recv must not be woken by the first recv's stale timer.
        msg2 = yield Recv(timeout=10.0)
        got.append(msg2)

    def sender(dst):
        yield Compute(units=100)  # 1s
        yield Send(dst, 10, "hello")

    wtid = pvm.spawn(waiter(), "m")
    pvm.spawn(sender(wtid), "m")
    pvm.run()
    assert got == ["hello", None]


def test_recv_negative_timeout_rejected():
    pvm = VirtualPVM([Machine("m", 1.0, 32)], sec_per_work_unit=0.01)

    def bad():
        yield Recv(timeout=-1.0)

    pvm.spawn(bad(), "m")
    with pytest.raises(ValueError):
        pvm.run()


def test_fail_machine_kills_tasks_and_drops_messages():
    machines = [Machine("a", 1.0, 32), Machine("b", 1.0, 32)]
    pvm = VirtualPVM(machines, sec_per_work_unit=0.01)
    finished = []

    def victim():
        yield Compute(units=1000)  # 10s, but the machine dies at t=1
        finished.append("victim")

    def survivor(dead_tid):
        yield Compute(units=100)
        yield Send(dead_tid, 10, "for the dead")  # dropped silently
        finished.append("survivor")

    vtid = pvm.spawn(victim(), "a")
    pvm.spawn(survivor(vtid), "b")
    pvm.fail_machine("a", 1.0)
    pvm.run()  # must not deadlock despite the dead task
    assert finished == ["survivor"]
    assert pvm.task(vtid).dead
    assert not pvm.task(vtid).finished


def test_fail_unknown_machine_rejected():
    pvm = VirtualPVM([Machine("m", 1.0, 32)], sec_per_work_unit=0.01)
    with pytest.raises(KeyError):
        pvm.fail_machine("ghost", 1.0)


# -- fault-tolerant strategy ----------------------------------------------------
@pytest.fixture(scope="module")
def machines():
    return ncsu_testbed()


def _ft(oracle, machines, **kw):
    return simulate_frame_division_fc_fault_tolerant(
        oracle, machines, CFG, sec_per_work_unit=SPU, thrash=NO_THRASH, **kw
    )


def test_ft_clean_run_completes_everything(tiny_oracle, machines):
    out = _ft(tiny_oracle, machines)
    assert len(out.frame_completion_times) == tiny_oracle.n_frames
    # Without failures nothing is re-executed: ray total equals a single
    # coherent chain decomposed over blocks (plus any tail-steal restarts).
    assert out.total_rays >= tiny_oracle.total_coherent_rays()


def test_ft_clean_run_is_competitive(tiny_oracle, machines):
    base = simulate_frame_division_fc(
        tiny_oracle, machines, CFG, sec_per_work_unit=SPU, thrash=NO_THRASH
    )
    out = _ft(tiny_oracle, machines)
    assert out.total_time < 2.0 * base.total_time


def test_ft_survives_one_failure(tiny_oracle, machines):
    clean = _ft(tiny_oracle, machines)
    out = _ft(
        tiny_oracle, machines, failures=[("indigo2-100", clean.total_time * 0.3)]
    )
    assert len(out.frame_completion_times) == tiny_oracle.n_frames
    # The dead machine's work was redone: at least as many rays, more time.
    assert out.total_rays >= clean.total_rays
    assert out.total_time > clean.total_time * 0.9


def test_ft_survives_two_failures(tiny_oracle, machines):
    clean = _ft(tiny_oracle, machines)
    out = _ft(
        tiny_oracle,
        machines,
        failures=[
            ("indigo2-100", clean.total_time * 0.2),
            ("indigo-100", clean.total_time * 0.4),
        ],
    )
    assert len(out.frame_completion_times) == tiny_oracle.n_frames


def test_ft_only_master_machine_survives(tiny_oracle, machines):
    """Both slave machines die almost immediately: the worker co-located
    with the master grinds through the entire animation alone."""
    out = _ft(
        tiny_oracle,
        machines,
        failures=[("indigo2-100", 0.05), ("indigo-100", 0.05)],
    )
    assert len(out.frame_completion_times) == tiny_oracle.n_frames
    busy = out.machine_busy_seconds
    # Essentially all the work ran on the surviving machine.
    assert busy["indigo2-200"] > 10 * max(busy["indigo2-100"], busy["indigo-100"])


def test_ft_master_machine_death_is_fatal(tiny_oracle, machines):
    """If the master's own machine dies, the surviving workers are stranded
    waiting for assignments — the run fails loudly with DeadlockError (a
    single-master design has a single point of failure; the paper's PVM
    master was exactly that)."""
    from repro.cluster import DeadlockError

    with pytest.raises(DeadlockError):
        _ft(tiny_oracle, machines, failures=[("indigo2-200", 0.05)])


def test_ft_deterministic(tiny_oracle, machines):
    a = _ft(tiny_oracle, machines, failures=[("indigo-100", 0.5)])
    b = _ft(tiny_oracle, machines, failures=[("indigo-100", 0.5)])
    assert a.total_time == b.total_time
    assert a.total_rays == b.total_rays


# -- fault-tolerant sequence division --------------------------------------------
def _seq_ft(oracle, machines, **kw):
    return simulate_sequence_division_fc_fault_tolerant(
        oracle, machines, CFG, sec_per_work_unit=SPU, thrash=NO_THRASH, **kw
    )


def test_seq_ft_clean_run_completes_everything(tiny_oracle, machines):
    out = _seq_ft(tiny_oracle, machines)
    assert len(out.frame_completion_times) == tiny_oracle.n_frames
    assert out.strategy == "sequence-division+fc+ft"


def test_seq_ft_survives_one_failure(tiny_oracle, machines):
    clean = _seq_ft(tiny_oracle, machines)
    out = _seq_ft(
        tiny_oracle, machines, failures=[("indigo2-100", clean.total_time * 0.3)]
    )
    assert len(out.frame_completion_times) == tiny_oracle.n_frames
    # The dead machine's frames were re-rendered from a fresh chain.
    assert out.total_rays >= clean.total_rays
    assert out.total_time > clean.total_time * 0.9


def test_seq_ft_master_machine_death_is_fatal(tiny_oracle, machines):
    from repro.cluster import DeadlockError

    with pytest.raises(DeadlockError):
        _seq_ft(tiny_oracle, machines, failures=[("indigo2-200", 0.05)])


def test_seq_ft_deterministic(tiny_oracle, machines):
    a = _seq_ft(tiny_oracle, machines, failures=[("indigo-100", 0.5)])
    b = _seq_ft(tiny_oracle, machines, failures=[("indigo-100", 0.5)])
    assert a.total_time == b.total_time
    assert a.total_rays == b.total_rays
