"""End-to-end integration tests crossing every subsystem.

These are the contracts the whole reproduction stands on:

1. coherent rendering is exact (bit-identical to full re-rendering) on the
   paper's own workloads;
2. partitioned parallel rendering assembles the same images;
3. the simulated Table-1 pipeline runs end-to-end from a real measured
   oracle and preserves the paper's orderings.
"""

import numpy as np
import pytest

from repro.coherence import CoherentRenderer, validate_sequence
from repro.imageio import difference_mask_image, mask_stats, pixel_set_image
from repro.render import RayTracer
from repro.runtime import AnimationSpec, LocalRenderFarm
from repro.scenes import brick_room_animation, newton_animation


@pytest.mark.parametrize("workload", ["newton", "brick"])
def test_coherence_exact_on_paper_workloads(workload):
    if workload == "newton":
        anim = newton_animation(n_frames=3, width=48, height=36)
    else:
        anim = brick_room_animation(n_frames=3, width=48, height=36)
    report = validate_sequence(anim, grid_resolution=16)
    assert report.all_exact
    assert report.all_conservative
    # Coherence must actually save work on these workloads.
    assert all(f.n_predicted < 48 * 36 for f in report.frames[1:])


def test_figure2_masks_newton():
    """Figure 2: predicted-diff mask covers the actual-diff mask."""
    anim = brick_room_animation(n_frames=2, width=48, height=36)
    full0, _ = RayTracer(anim.scene_at(0)).render()
    full1, _ = RayTracer(anim.scene_at(1)).render()
    actual = difference_mask_image(full0.as_image(), full1.as_image())

    r = CoherentRenderer(anim, grid_resolution=16)
    r.render_next()
    rep = r.render_next()
    predicted = pixel_set_image(rep.computed_pixels, 48, 36)

    stats = mask_stats(actual, predicted)
    assert stats["missed"] == 0  # conservative
    assert stats["actual"] > 0  # the ball moved
    assert stats["predicted"] < 48 * 36  # but not everything recomputes


def test_parallel_farm_equals_coherent_reference():
    spec = AnimationSpec.brick_room(n_frames=2, width=32, height=24)
    farm = LocalRenderFarm(spec, mode="frame", executor="serial", grid_resolution=12)
    res = farm.render()
    ref = farm.render_reference()
    np.testing.assert_array_equal(res.frames, ref.frames)


def test_oracle_to_table1_pipeline(tiny_oracle):
    from repro.bench import run_table1

    result = run_table1(tiny_oracle)
    # The Table-1 orderings that hold even for a 5-frame tiny run:
    assert result.fc_speedup > 1.0
    assert result.distributed_speedup > 1.0
    assert result.frame_div_speedup > result.fc_speedup
    assert result.frame_div_speedup > result.distributed_speedup
    assert result.fc_ray_reduction > 1.0


def test_ray_count_identity_between_engine_and_oracle(tiny_newton_animation, tiny_oracle):
    """The oracle's chain arithmetic equals what the live engine fires."""
    r = CoherentRenderer(tiny_newton_animation, grid_resolution=16)
    live_total = 0
    for _ in range(tiny_newton_animation.n_frames):
        live_total += r.render_next().stats.total
    assert live_total == tiny_oracle.total_coherent_rays()
