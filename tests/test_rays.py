"""Tests for RayBatch."""

import numpy as np
import pytest

from repro.geometry import RayBatch, RayKind


def _batch(n=3, kind=RayKind.CAMERA):
    return RayBatch(
        origins=np.zeros((n, 3)),
        dirs=np.tile([0.0, 0.0, 1.0], (n, 1)),
        pixel=np.arange(n),
        weight=np.ones((n, 3)),
        kind=kind,
    )


def test_len_and_defaults():
    b = _batch(4)
    assert len(b) == 4
    assert b.depth == 0
    assert b.inside.shape == (4,)
    assert not b.inside.any()


def test_shape_validation():
    with pytest.raises(ValueError):
        RayBatch(np.zeros((2, 3)), np.zeros((3, 3)), np.arange(2), np.ones((2, 3)))
    with pytest.raises(ValueError):
        RayBatch(np.zeros((2, 3)), np.zeros((2, 3)), np.arange(3), np.ones((2, 3)))
    with pytest.raises(ValueError):
        RayBatch(np.zeros((2, 3)), np.zeros((2, 3)), np.arange(2), np.ones((3, 3)))
    with pytest.raises(ValueError):
        RayBatch(
            np.zeros((2, 3)),
            np.zeros((2, 3)),
            np.arange(2),
            np.ones((2, 3)),
            inside=np.zeros(3, dtype=bool),
        )


def test_select_mask_and_indices():
    b = _batch(5)
    sel = b.select(np.array([True, False, True, False, False]))
    assert len(sel) == 2
    np.testing.assert_array_equal(sel.pixel, [0, 2])
    sel2 = b.select(np.array([4, 1]))
    np.testing.assert_array_equal(sel2.pixel, [4, 1])
    assert sel2.kind == b.kind and sel2.depth == b.depth


def test_points_at():
    b = _batch(2)
    pts = b.points_at(np.array([1.0, 2.0]))
    np.testing.assert_allclose(pts, [[0, 0, 1], [0, 0, 2]])


def test_inv_dirs_handles_zero_components():
    b = _batch(1)
    inv = b.inv_dirs
    assert np.isinf(inv[0, 0]) and np.isinf(inv[0, 1])
    assert inv[0, 2] == pytest.approx(1.0)


def test_normalized_constructor():
    b = RayBatch.normalized(
        origins=np.zeros((1, 3)),
        dirs=np.array([[0.0, 0.0, 5.0]]),
        pixel=np.array([0]),
        weight=np.ones((1, 3)),
    )
    np.testing.assert_allclose(np.linalg.norm(b.dirs, axis=1), [1.0])


def test_ray_kind_values():
    assert int(RayKind.CAMERA) == 0
    assert {k.name for k in RayKind} == {"CAMERA", "REFLECTED", "REFRACTED", "SHADOW"}
