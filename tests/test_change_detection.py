"""Tests for inter-frame change detection."""

import numpy as np

from repro.accel import UniformGrid
from repro.coherence import changed_voxels, objects_changed, scene_signature
from repro.geometry import Plane, Sphere
from repro.lighting import PointLight
from repro.materials import Material
from repro.rmath import AABB, Transform, vec3
from repro.scene import Camera, Scene


# Shared base objects: change detection matches objects across frames by
# prim_id, so the two compared scenes must be built from the SAME primitives
# (exactly what FunctionAnimation does).
_FLOOR = Plane.from_normal((0, 1, 0), 0.0, material=Material.matte((1, 1, 1)), name="floor")
_BALL = Sphere.at((0, 1, 0), 0.5, material=Material.matte((1, 0, 0)), name="ball")


def _scene(ball_x=0.0, light_pos=(0, 5, -5), extra=None):
    cam = Camera(position=(0, 1, -5), look_at=(0, 1, 0), width=8, height=8)
    objects = [
        _FLOOR,
        _BALL if ball_x == 0.0 else _BALL.moved_by(Transform.translate(ball_x, 0, 0)),
    ]
    if extra is not None:
        objects.append(extra)
    return Scene(
        camera=cam,
        objects=objects,
        lights=[PointLight(np.asarray(light_pos, dtype=float), np.ones(3))],
    )


def _grid():
    return UniformGrid(AABB(vec3(-4, -1, -4), vec3(4, 4, 4)), 8)


def test_identical_scenes_no_changes():
    a, b = _scene(), _scene()
    assert changed_voxels(_grid(), a, b).size == 0
    assert objects_changed(a, b) == []


def test_moved_object_detected():
    a, b = _scene(0.0), _scene(1.0)
    pairs = objects_changed(a, b)
    assert len(pairs) == 1
    po, co = pairs[0]
    assert po.name == "ball" and co.name == "ball"


def test_changed_voxels_cover_old_and_new_positions():
    g = _grid()
    a, b = _scene(0.0), _scene(2.0)
    vox = changed_voxels(g, a, b)
    old_vox = set(g.voxels_overlapping(a.object_by_name("ball").bounds()).tolist())
    new_vox = set(g.voxels_overlapping(b.object_by_name("ball").bounds()).tolist())
    got = set(vox.tolist())
    assert old_vox <= got and new_vox <= got


def test_changed_voxels_bounded():
    """A small moved object must not dirty the whole grid."""
    g = _grid()
    vox = changed_voxels(g, _scene(0.0), _scene(0.5))
    assert 0 < vox.size < g.n_voxels // 4


def test_added_object_detected():
    extra = Sphere.at((2, 1, 2), 0.3, material=Material.matte((0, 1, 0)), name="new")
    a = _scene()
    b = _scene(extra=extra)
    pairs = objects_changed(a, b)
    assert len(pairs) == 1
    assert pairs[0][0] is None and pairs[0][1].name == "new"
    vox = changed_voxels(_grid(), a, b)
    assert vox.size > 0


def test_removed_object_detected():
    extra = Sphere.at((2, 1, 2), 0.3, material=Material.matte((0, 1, 0)), name="old")
    a = _scene(extra=extra)
    b = _scene()
    pairs = objects_changed(a, b)
    assert pairs[0][1] is None


def test_light_change_invalidates_everything():
    g = _grid()
    a = _scene(light_pos=(0, 5, -5))
    b = _scene(light_pos=(1, 5, -5))
    vox = changed_voxels(g, a, b)
    assert vox.size == g.n_voxels


def test_light_count_change_invalidates_everything():
    g = _grid()
    a = _scene()
    b = _scene()
    b.add_light(PointLight(np.array([9.0, 9, 9]), np.ones(3)))
    assert changed_voxels(g, a, b).size == g.n_voxels


def test_background_change_invalidates_everything():
    g = _grid()
    a = _scene()
    b = _scene()
    b.background = np.array([1.0, 0, 0])
    assert changed_voxels(g, a, b).size == g.n_voxels


def test_scene_signature_stable_and_sensitive():
    assert scene_signature(_scene()) == scene_signature(_scene())
    assert scene_signature(_scene(0.0)) != scene_signature(_scene(1.0))


def test_moved_plane_clipped_to_grid():
    """An infinite object's change footprint is clipped to the grid."""
    g = _grid()
    a = _scene()
    b = _scene()
    floor = b.object_by_name("floor")
    b.objects[0] = floor.moved_by(Transform.translate(0, 0.5, 0))
    vox = changed_voxels(g, a, b)
    assert 0 < vox.size <= g.n_voxels
