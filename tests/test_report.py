"""Tests for outcome reporting (markdown/CSV exports, latency stats)."""

import csv
import io

import pytest

from repro.bench import (
    frame_completion_csv,
    frame_latency_stats,
    outcomes_csv,
    outcomes_markdown,
)
from repro.parallel import SimulationOutcome


def _outcome(name="s", total=100.0, frames=None):
    return SimulationOutcome(
        strategy=name,
        n_frames=4,
        total_time=total,
        first_frame_time=10.0,
        frame_completion_times=frames or {0: 10.0, 1: 30.0, 2: 60.0, 3: total},
        total_rays=5000,
        total_units=5600.0,
        machine_busy_seconds={"a": total * 0.9, "b": total * 0.8},
        n_messages=42,
        bytes_on_wire=1_000_000,
        ethernet_busy_seconds=3.0,
        n_chain_starts=2,
        n_steals=1,
    )


def test_markdown_table():
    md = outcomes_markdown([_outcome("alpha", 100.0), _outcome("beta", 50.0)])
    lines = md.splitlines()
    assert lines[0].startswith("| strategy |")
    assert "| alpha |" in md and "| beta |" in md
    assert "2.00x" in md  # beta vs alpha baseline


def test_markdown_custom_baseline():
    a, b = _outcome("a", 100.0), _outcome("b", 50.0)
    md = outcomes_markdown([a, b], baseline=b)
    assert "0.50x" in md  # a is half the speed of b


def test_markdown_empty_rejected():
    with pytest.raises(ValueError):
        outcomes_markdown([])


def test_csv_roundtrip(tmp_path):
    path = tmp_path / "out.csv"
    text = outcomes_csv([_outcome("x", 77.0)], path=path)
    assert path.read_text() == text
    rows = list(csv.DictReader(io.StringIO(text)))
    assert rows[0]["strategy"] == "x"
    assert float(rows[0]["total_seconds"]) == pytest.approx(77.0)
    assert int(rows[0]["total_rays"]) == 5000


def test_frame_completion_csv():
    text = frame_completion_csv(_outcome())
    rows = list(csv.DictReader(io.StringIO(text)))
    assert [int(r["frame"]) for r in rows] == [0, 1, 2, 3]
    assert float(rows[1]["completed_at_seconds"]) == pytest.approx(30.0)


def test_frame_latency_stats():
    stats = frame_latency_stats(_outcome(total=100.0))
    # Gaps: 20, 30, 40.
    assert stats["mean"] == pytest.approx(30.0)
    assert stats["max"] == pytest.approx(40.0)
    assert stats["p50"] == pytest.approx(30.0)


def test_frame_latency_degenerate():
    out = _outcome(frames={0: 5.0})
    assert frame_latency_stats(out)["max"] == 0.0


def test_report_on_real_outcome(tiny_oracle):
    from repro.cluster import ThrashModel, ncsu_testbed
    from repro.parallel import RenderFarmConfig, simulate_frame_division_fc

    out = simulate_frame_division_fc(
        tiny_oracle,
        ncsu_testbed(),
        RenderFarmConfig(),
        sec_per_work_unit=1e-4,
        thrash=ThrashModel(alpha=0.0),
    )
    md = outcomes_markdown([out])
    assert "frame-division+fc" in md
    stats = frame_latency_stats(out)
    assert stats["max"] >= stats["p90"] >= stats["p50"] >= 0.0
