"""The shipped .sdl example scenes must parse and render."""

from pathlib import Path

import numpy as np

from repro.geometry import CSGDifference, CSGIntersection, Cylinder, Plane, Sphere, Torus
from repro.render import RayTracer
from repro.scene import load_scene

SCENES_DIR = Path(__file__).resolve().parents[1] / "examples" / "scenes"


def _small(scene):
    scene.camera = scene.camera.with_resolution(48, 36)
    return scene


def test_scene_files_exist():
    assert (SCENES_DIR / "cradle.sdl").exists()
    assert (SCENES_DIR / "still_life.sdl").exists()


def test_cradle_scene_inventory():
    scene = load_scene(SCENES_DIR / "cradle.sdl")
    assert sum(isinstance(o, Plane) for o in scene.objects) == 1
    assert sum(isinstance(o, Sphere) for o in scene.objects) == 5
    assert sum(isinstance(o, Cylinder) for o in scene.objects) == 16
    assert scene.object_by_name("marble2") is not None
    assert len(scene.lights) == 2


def test_cradle_scene_renders():
    scene = _small(load_scene(SCENES_DIR / "cradle.sdl"))
    fb, res = RayTracer(scene).render()
    assert res.stats.reflected > 0  # chrome marbles
    assert fb.to_uint8().std() > 5


def test_still_life_inventory():
    scene = load_scene(SCENES_DIR / "still_life.sdl")
    kinds = [type(o) for o in scene.objects]
    assert CSGIntersection in kinds
    assert CSGDifference in kinds
    assert Torus in kinds
    assert scene.max_depth == 6
    assert scene.lights[0].is_soft and scene.lights[0].n_samples == 12


def test_still_life_renders_all_ray_kinds():
    scene = _small(load_scene(SCENES_DIR / "still_life.sdl"))
    fb, res = RayTracer(scene).render()
    assert res.stats.reflected > 0
    assert res.stats.refracted > 0  # the glass lens
    assert res.stats.shadow > 0
    img = fb.to_uint8()
    assert img.std() > 5 and img.max() > 100


def test_still_life_torus_placed():
    scene = load_scene(SCENES_DIR / "still_life.sdl")
    ring = scene.object_by_name("ring")
    np.testing.assert_allclose(ring.bounds().center, [2.9, 0.28, -1.3], atol=1e-9)
