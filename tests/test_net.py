"""repro.net: wire protocol, loopback farm, failure/recovery drills.

Three layers of confidence, cheapest first: the codec round-trips every
wire type bit-exactly (framebuffers especially), the loopback TCP farm
drives real policies over real sockets to the same dispatch logs as the
other transports (see test_sched_equivalence), and the full render path
stays bit-identical to the serial reference even when a worker daemon is
killed mid-sequence.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.net import protocol as wire
from repro.net.master import MasterServer, TcpTransport
from repro.net.worker import WorkerClient
from repro.runtime import AnimationSpec, LocalRenderFarm
from repro.sched import make_policy
from repro.telemetry import InMemorySink, Telemetry, validate_events


# -- codec ------------------------------------------------------------------------
@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -17,
        1 << 40,
        -(1 << 62),
        3.14159,
        float("-0.0"),
        "",
        "héllo wörld",
        b"",
        b"\x00\xff\x7f",
        [],
        [1, "two", 3.0, None],
        (),
        (1, (2, [3, "4"]), None),
        {"a": 1, "b": [True, {"c": (1.5,)}]},
    ],
)
def test_scalar_and_container_round_trip(value):
    out = wire.decode(wire.encode(value))
    assert out == value
    assert type(out) is type(value)


def test_tuples_and_lists_stay_distinct():
    out = wire.decode(wire.encode({"t": (1, 2), "l": [1, 2]}))
    assert isinstance(out["t"], tuple) and isinstance(out["l"], list)


@pytest.mark.parametrize("compress", [False, True])
def test_arrays_round_trip_bit_identical(compress):
    rng = np.random.default_rng(7)
    arrays = [
        rng.random((3, 16, 12, 3)),  # float64 framebuffer shape
        np.arange(20, dtype=np.int64).reshape(4, 5),
        np.zeros((0, 3)),
        np.array(2.5),  # 0-d
        np.linspace(0, 1, 7, dtype=np.float32),
    ]
    for a in arrays:
        out = wire.decode(wire.encode(a, compress_arrays=compress, compress_min_bytes=1))
        assert out.dtype == a.dtype and out.shape == a.shape
        assert out.tobytes() == a.tobytes()


def test_compression_shrinks_compressible_payloads():
    smooth = np.zeros((8, 64, 64), dtype=np.float64)
    raw = wire.encode(smooth, compress_arrays=False)
    packed = wire.encode(smooth, compress_arrays=True, compress_min_bytes=1)
    assert len(packed) < len(raw) // 10


def test_incompressible_payloads_are_kept_raw():
    noise = np.random.default_rng(0).random((64, 64))
    raw = wire.encode(noise, compress_arrays=False)
    packed = wire.encode(noise, compress_arrays=True, compress_min_bytes=1)
    # zlib would grow pure noise; the encoder must keep the smaller form
    assert len(packed) <= len(raw) + 16
    assert np.array_equal(wire.decode(packed), noise)


def test_unencodable_type_raises():
    with pytest.raises(wire.ProtocolError, match="unencodable"):
        wire.encode({"bad": object()})


def test_decode_rejects_junk():
    with pytest.raises(wire.ProtocolError):
        wire.decode(b"\x99whatever")
    with pytest.raises(wire.ProtocolError, match="truncated"):
        wire.decode(wire.encode("hello")[:-2])
    with pytest.raises(wire.ProtocolError, match="trailing"):
        wire.decode(wire.encode(1) + b"\x00")


# -- framing ----------------------------------------------------------------------
def test_assembler_reassembles_across_arbitrary_splits():
    frames = [
        wire.pack_frame(wire.MSG_ASSIGN, {"seq": i, "args": (i, "lane")})
        for i in range(5)
    ]
    stream = b"".join(frames)
    for step in (1, 3, len(stream)):
        asm = wire.FrameAssembler()
        got = []
        for i in range(0, len(stream), step):
            asm.feed(stream[i : i + step])
            got.extend(asm)
        assert [payload["seq"] for _t, payload, _n in got] == list(range(5))
        assert sum(n for _t, _p, n in got) == len(stream)


def test_assembler_byte_at_a_time_with_memoryview_feeds():
    # The worst-case TCP delivery: every recv() returns one byte, and the
    # bytes arrive as memoryviews (what a recv_into loop hands over).
    # Array payloads must still come out bit-identical.
    a = np.arange(48, dtype=np.float64).reshape(4, 4, 3)
    stream = wire.pack_frame(wire.MSG_RESULT, {"seq": 9, "frames": a}) + wire.pack_frame(
        wire.MSG_PING, {}
    )
    asm = wire.FrameAssembler()
    got = []
    for i in range(len(stream)):
        asm.feed(memoryview(stream)[i : i + 1])
        got.extend(asm)
    assert [t for t, _p, _n in got] == [wire.MSG_RESULT, wire.MSG_PING]
    out = got[0][1]["frames"]
    assert out.tobytes() == a.tobytes() and out.shape == a.shape


def test_assembler_every_split_boundary():
    # One frame, cut into two chunks at every possible boundary: the
    # header/payload straddle cases and the spanning-join path all
    # reassemble to the same decoded payload.
    a = np.linspace(0.0, 1.0, 36, dtype=np.float64).reshape(3, 4, 3)
    frame = wire.pack_frame(wire.MSG_RESULT, {"seq": 1, "frames": a, "tag": "x"})
    for cut in range(len(frame) + 1):
        asm = wire.FrameAssembler()
        asm.feed(frame[:cut])
        asm.feed(frame[cut:])
        got = list(asm)
        assert len(got) == 1
        _t, payload, n = got[0]
        assert n == len(frame)
        assert payload["seq"] == 1 and payload["tag"] == "x"
        assert payload["frames"].tobytes() == a.tobytes()


def test_decoded_arrays_are_read_only_views():
    # Zero-copy decode hands out views over the wire buffer; they must be
    # read-only so no consumer can scribble on what another view shares.
    a = np.arange(12, dtype=np.float64).reshape(4, 3)
    out = wire.decode(wire.encode(a, compress_arrays=False))
    assert not out.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        out[0, 0] = 99.0
    # The documented escape hatch for a consumer that needs to mutate:
    own = np.array(out)
    own[0, 0] = 99.0
    assert out[0, 0] == 0.0


def test_legacy_copy_mode_matches_zero_copy_bytes():
    # The legacy (copying) codec path is kept for the benchmark baseline;
    # both modes must produce identical wire bytes and identical decodes.
    from repro.buffers import copystats

    payload = {"seq": 3, "frames": np.arange(60, dtype=np.float64).reshape(5, 4, 3)}
    assert wire.zero_copy_enabled()
    zc = wire.pack_frame(wire.MSG_RESULT, payload)
    copystats.reset()
    wire.set_zero_copy(False)
    try:
        legacy = wire.pack_frame(wire.MSG_RESULT, payload)
        asm = wire.FrameAssembler()
        asm.feed(legacy)
        (_t, out, _n), = list(asm)
    finally:
        wire.set_zero_copy(True)
    assert legacy == zc
    assert out["frames"].tobytes() == payload["frames"].tobytes()
    # ...and the legacy run is the one that paid for copies.
    assert copystats.total() >= payload["frames"].nbytes


def test_assembler_rejects_bad_magic_and_oversize():
    asm = wire.FrameAssembler()
    asm.feed(b"XXXX" + b"\x00" * 8)
    with pytest.raises(wire.ProtocolError, match="magic"):
        list(asm)
    header = wire._HEADER.pack(wire.MAGIC, wire.PROTO_VERSION, wire.MSG_PING, 0,
                               wire.MAX_PAYLOAD + 1)
    asm2 = wire.FrameAssembler()
    asm2.feed(header)
    with pytest.raises(wire.ProtocolError, match="MAX_PAYLOAD"):
        list(asm2)


def test_assembler_rejects_version_mismatch():
    frame = bytearray(wire.pack_frame(wire.MSG_PING, {}))
    frame[4] = wire.PROTO_VERSION + 1
    asm = wire.FrameAssembler()
    asm.feed(bytes(frame))
    with pytest.raises(wire.ProtocolError, match="version"):
        list(asm)


# -- loopback transport -----------------------------------------------------------
def _echo_transport(policy, n_workers, **kw):
    return TcpTransport(
        policy,
        "echo",
        lambda a, lane: (a.seq, lane),
        n_workers=n_workers,
        startup_timeout=120.0,
        **kw,
    )


def test_loopback_echo_farm_completes_and_accounts_bytes():
    policy = make_policy("frame-division-nofc", 8, n_regions=2)
    sink = InMemorySink()
    tel = Telemetry(sinks=(sink,))
    out = _echo_transport(policy, 2, telemetry=tel).run()
    tel.close()
    assert len(out.results) == 16
    assert sorted(seq for seq, _lane in out.results) == list(range(16))
    assert out.net.n_assignments == 16 and out.net.n_results == 16
    assert out.net.bytes_sent > 0 and out.net.bytes_received > 0
    # instant echoes may all drain through whichever daemon boots first,
    # so the second join (and how work splits) is timing-dependent
    assert out.net.n_workers_joined >= 1 and out.net.n_losses == 0
    assert "w0" in out.workers
    for info in out.workers.values():
        assert info["cores"] >= 1 and info["score"] > 0
    validate_events(sink.events)
    names = {r["name"] for r in sink.events}
    assert {"net.listen", "net.worker.join", "net.assign", "net.result"} <= names


def test_injected_worker_kill_is_reassigned():
    # sleep_echo keeps the run alive long enough for both daemons to join;
    # worker 0 dies on its first assignment, whenever that lands.
    policy = make_policy("frame-division-nofc", 10, n_regions=1)
    sink = InMemorySink()
    tel = Telemetry(sinks=(sink,))
    transport = TcpTransport(
        policy,
        "sleep_echo",
        lambda a, lane: (0.15, (a.seq, lane)),
        n_workers=2,
        die_after={0: 0},
        startup_timeout=120.0,
        telemetry=tel,
    )
    out = transport.run()
    tel.close()
    sup = out.supervisor
    assert len(out.results) == 10
    assert policy.finished
    assert sup.n_crashes >= 1 and sup.n_retries >= 1
    assert out.net.n_losses >= 1
    lost = [r for r in sink.events if r["name"] == "net.worker.lost"]
    assert lost and lost[0]["attrs"]["reason"] == "eof"
    validate_events(sink.events)


def test_task_error_reconnect_then_max_attempts():
    """A worker that errors on its assignment is dropped and reconnects as
    a fresh lane; the same unit failing ``max_attempts`` times fails the
    run loudly instead of looping forever."""
    policy = make_policy("frame-division-nofc", 1, n_regions=1)
    transport = TcpTransport(
        policy,
        "no-such-task",
        lambda a, lane: (a.seq, lane),
        n_workers=1,
        max_attempts=2,
        startup_timeout=120.0,
    )
    with pytest.raises(RuntimeError, match="failed after 2 attempts"):
        transport.run()
    assert transport.master.net.n_losses >= 2


def test_backoff_jitter_is_deterministic_per_worker():
    """Reconnect schedules are seeded by the worker label: the same worker
    always walks the same delays (reproducible drills), different workers
    walk different ones (no thundering herd after a master restart)."""
    mk = lambda label: WorkerClient(  # noqa: E731
        "127.0.0.1", 1, score=1.0, label=label,
        backoff_base=0.2, backoff_cap=3.0, max_retries=10,
    )
    a1 = list(mk("ws-a:1").backoff_delays())
    a2 = list(mk("ws-a:1").backoff_delays())
    b = list(mk("ws-b:1").backoff_delays())
    assert a1 == a2            # same label -> identical schedule
    assert a1 != b             # different labels spread out
    assert len(a1) == 10
    assert all(0.0 < d <= 3.0 for d in a1 + b)  # jitter never breaks the cap
    # The jittered schedule still grows (roughly) exponentially at the start.
    assert a1[0] < 0.2 * 1.5 + 1e-9
    assert all(d == 3.0 or d > a1[0] for d in a1[2:])


def test_worker_connects_before_master_listens():
    """The daemon's backoff loop covers the worker-starts-first race."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    client = WorkerClient("127.0.0.1", port, score=1.0, backoff_base=0.1, max_retries=30)
    exit_code = {}
    t = threading.Thread(target=lambda: exit_code.setdefault("rc", client.run()), daemon=True)
    t.start()
    time.sleep(0.35)  # let at least one connection attempt fail

    policy = make_policy("frame-division-nofc", 3, n_regions=1)
    master = MasterServer(
        policy, "echo", lambda a, lane: (a.seq, lane), port=port, startup_timeout=120.0
    )
    master.listen()
    out = master.serve()
    t.join(timeout=10.0)
    assert len(out.results) == 3
    assert exit_code.get("rc") == 0  # clean SHUTDOWN
    assert client.n_rendered == 3


def test_master_times_out_with_no_workers():
    policy = make_policy("frame-division-nofc", 1, n_regions=1)
    master = MasterServer(
        policy, "echo", lambda a, lane: (a.seq, lane), accept_timeout=0.3
    )
    master.listen()
    with pytest.raises(RuntimeError, match="no workers connected"):
        master.serve()


# -- the full render path over TCP ------------------------------------------------
@pytest.fixture(scope="module")
def tcp_spec():
    return AnimationSpec.newton(n_frames=4, width=24, height=18)


@pytest.fixture(scope="module")
def serial_reference(tcp_spec):
    farm = LocalRenderFarm(tcp_spec, executor="serial", grid_resolution=12)
    return farm.render_reference()


def test_tcp_farm_bit_identical_to_serial(tcp_spec, serial_reference):
    farm = LocalRenderFarm(
        tcp_spec, n_workers=2, schedule="adaptive", transport="tcp", grid_resolution=12
    )
    out = farm.render()
    # pixels must match bit-for-bit; ray *counts* legitimately differ
    # (two chains mean two fresh starts vs the reference's one)
    assert out.frames.tobytes() == serial_reference.frames.tobytes()
    assert out.stats.total >= serial_reference.stats.total


def test_tcp_farm_survives_worker_kill_bit_identically(tcp_spec, serial_reference):
    sink = InMemorySink()
    tel = Telemetry(sinks=(sink,))
    farm = LocalRenderFarm(
        tcp_spec,
        n_workers=2,
        schedule="adaptive",
        transport="tcp",
        net_die_after={0: 1},
        grid_resolution=12,
        telemetry=tel,
    )
    out = farm.render()
    tel.close()
    assert out.n_crashes >= 1
    assert out.frames.tobytes() == serial_reference.frames.tobytes()
    validate_events(sink.events)
    names = {r["name"] for r in sink.events}
    assert "net.worker.lost" in names and "recovery" in names


def test_tcp_requires_dynamic_schedule(tcp_spec):
    with pytest.raises(ValueError, match="dynamic schedule"):
        LocalRenderFarm(tcp_spec, transport="tcp", schedule="static")


def test_tcp_farm_streams_tiles_with_telemetry(tcp_spec, serial_reference):
    """Tiling must actually stream (no silent whole-frame fallback): every
    frame's pixels arrive via MSG_TILE, the RESULT ships none, and the
    dfb.tile events validate against the pinned schema."""
    sink = InMemorySink()
    tel = Telemetry(sinks=(sink,))
    farm = LocalRenderFarm(
        tcp_spec, n_workers=2, schedule="adaptive", transport="tcp",
        grid_resolution=12, tile_px=16, telemetry=tel,
    )
    out = farm.render()
    tel.close()
    assert out.streamed
    assert out.frames.tobytes() == serial_reference.frames.tobytes()
    net = out.net
    assert net.n_tiles >= tcp_spec.build().n_frames  # >= one tile per frame
    assert net.t_first_tile is not None and net.t_first_result is not None
    assert net.t_first_tile <= net.t_first_result
    # Streaming RESULTs carry bookkeeping only — tiles dominate the wire.
    assert net.max_msg_bytes["tile"] > net.max_msg_bytes["result"]
    validate_events(sink.events)
    tile_events = [r for r in sink.events if r["name"] == "dfb.tile"]
    assert len(tile_events) == net.n_tiles
    frames_seen = {r["attrs"]["frame"] for r in tile_events}
    assert frames_seen == set(range(tcp_spec.build().n_frames))


def test_tcp_farm_tile_px_zero_restores_whole_subarea_wire(tcp_spec, serial_reference):
    farm = LocalRenderFarm(
        tcp_spec, n_workers=2, schedule="adaptive", transport="tcp",
        grid_resolution=12, tile_px=0,
    )
    out = farm.render()
    assert not out.streamed
    assert out.net.n_tiles == 0
    assert out.frames.tobytes() == serial_reference.frames.tobytes()
