"""Tests for the deterministic value-noise stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.rmath import fbm, turbulence, value_noise

points = arrays(
    np.float64,
    (8, 3),
    elements=st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
)


@given(points)
@settings(max_examples=50)
def test_value_noise_range_and_determinism(p):
    a = value_noise(p)
    b = value_noise(p)
    np.testing.assert_array_equal(a, b)
    assert np.all(a >= 0.0) and np.all(a < 1.0)


def test_value_noise_continuity():
    """Noise is continuous across cell boundaries (quintic fade)."""
    base = np.array([[2.0, 3.0, 4.0]])
    eps = 1e-6
    lo = value_noise(base - eps)
    hi = value_noise(base + eps)
    assert abs(float(hi[0] - lo[0])) < 1e-3


def test_value_noise_varies():
    rng = np.random.default_rng(0)
    p = rng.uniform(-10, 10, size=(256, 3))
    v = value_noise(p)
    assert v.std() > 0.05  # not constant


@given(points)
@settings(max_examples=30)
def test_fbm_range(p):
    v = fbm(p, octaves=4)
    assert np.all(v >= 0.0) and np.all(v <= 1.0)


@given(points)
@settings(max_examples=30)
def test_turbulence_range(p):
    v = turbulence(p, octaves=4)
    assert np.all(v >= 0.0) and np.all(v <= 1.0 + 1e-9)


def test_octave_validation():
    p = np.zeros((1, 3))
    with pytest.raises(ValueError):
        fbm(p, octaves=0)
    with pytest.raises(ValueError):
        turbulence(p, octaves=0)


def test_fbm_more_octaves_changes_value():
    p = np.array([[1.3, 2.7, -0.4]])
    assert float(fbm(p, octaves=1)[0]) != pytest.approx(float(fbm(p, octaves=5)[0]), abs=1e-6)


def test_scalar_shape_handling():
    v = value_noise(np.array([0.5, 0.5, 0.5]))
    assert np.ndim(v) == 0
