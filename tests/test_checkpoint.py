"""Tests for coherent render checkpoint/restore."""

import numpy as np
import pytest

from repro.coherence import CoherentRenderer, load_checkpoint, save_checkpoint
from repro.scenes import newton_animation


@pytest.fixture(scope="module")
def anim():
    return newton_animation(n_frames=5, width=48, height=36)


def test_resume_continues_bit_exactly(anim, tmp_path):
    # Uninterrupted reference run.
    ref = CoherentRenderer(anim, grid_resolution=16)
    ref_frames = []
    ref_rays = []
    for _ in range(anim.n_frames):
        rep = ref.render_next()
        ref_frames.append(ref.frame_image())
        ref_rays.append(rep.stats.total)

    # Interrupted run: checkpoint after frame 1, restore, continue.
    first = CoherentRenderer(anim, grid_resolution=16)
    first.render_next()
    first.render_next()
    path = tmp_path / "ckpt.npz"
    save_checkpoint(first, path)
    del first

    resumed = load_checkpoint(anim, path)
    assert resumed.frames_remaining == 3
    for f in range(2, anim.n_frames):
        rep = resumed.render_next()
        np.testing.assert_array_equal(resumed.frame_image(), ref_frames[f])
        # Same dirty sets -> same ray counts: the chain truly continued.
        assert rep.stats.total == ref_rays[f]


def test_checkpoint_before_first_frame(anim, tmp_path):
    r = CoherentRenderer(anim, grid_resolution=16)
    path = tmp_path / "fresh.npz"
    save_checkpoint(r, path)
    resumed = load_checkpoint(anim, path)
    rep = resumed.render_next()
    assert rep.frame == 0
    assert rep.n_computed == anim.camera_at(0).n_pixels


def test_checkpoint_preserves_region_and_range(anim, tmp_path):
    region = np.arange(0, 48 * 36, 2)
    r = CoherentRenderer(
        anim, region=region, grid_resolution=16, first_frame=1, last_frame=4
    )
    r.render_next()
    path = tmp_path / "r.npz"
    save_checkpoint(r, path)
    resumed = load_checkpoint(anim, path)
    np.testing.assert_array_equal(resumed.region, region)
    assert resumed.first_frame == 1 and resumed.last_frame == 4
    assert resumed.frames_remaining == 2


def test_resolution_mismatch_rejected(anim, tmp_path):
    r = CoherentRenderer(anim, grid_resolution=16)
    r.render_next()
    path = tmp_path / "c.npz"
    save_checkpoint(r, path)
    other = newton_animation(n_frames=5, width=32, height=24)
    with pytest.raises(ValueError, match="resolution"):
        load_checkpoint(other, path)


def test_bad_version_rejected(anim, tmp_path):
    r = CoherentRenderer(anim, grid_resolution=16)
    path = tmp_path / "v.npz"
    save_checkpoint(r, path)
    data = dict(np.load(path))
    data["version"] = np.int64(99)
    np.savez_compressed(path, **data)
    with pytest.raises(ValueError, match="version"):
        load_checkpoint(anim, path)
