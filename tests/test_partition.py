"""Tests for partitioning schemes (Figure 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    PixelRegion,
    block_regions,
    hybrid_tasks,
    pixel_regions,
    region_grid_shape,
    sequence_ranges,
    strip_regions,
)


def _coverage_ok(regions, width, height):
    """Regions tile the frame exactly: disjoint and complete."""
    seen = np.zeros(width * height, dtype=int)
    for r in regions:
        seen[r.pixels] += 1
    return np.all(seen == 1)


def test_paper_block_layout():
    """320x240 in 80x80 blocks: a 4x3 grid of 12 blocks (the paper's run)."""
    regions = block_regions(320, 240, 80, 80)
    assert len(regions) == 12
    assert all(r.n_pixels == 6400 for r in regions)
    assert region_grid_shape(regions) == (4, 3)
    assert _coverage_ok(regions, 320, 240)


def test_block_regions_clip_at_edges():
    regions = block_regions(100, 70, 80, 80)
    assert len(regions) == 2
    assert regions[0].n_pixels == 80 * 70
    assert regions[1].n_pixels == 20 * 70
    assert _coverage_ok(regions, 100, 70)


@given(
    width=st.integers(1, 64),
    height=st.integers(1, 64),
    bw=st.integers(1, 64),
    bh=st.integers(1, 64),
)
@settings(max_examples=60)
def test_block_regions_always_tile(width, height, bw, bh):
    assert _coverage_ok(block_regions(width, height, bw, bh), width, height)


def test_strip_regions():
    strips = strip_regions(40, 30, 3)
    assert len(strips) == 3
    assert _coverage_ok(strips, 40, 30)
    assert all(s.x0 == 0 and s.x1 == 40 for s in strips)


@given(height=st.integers(1, 50), n=st.integers(1, 10))
@settings(max_examples=40)
def test_strip_regions_tile(height, n):
    n = min(n, height)
    assert _coverage_ok(strip_regions(8, height, n), 8, height)


def test_pixel_regions_extreme():
    regions = pixel_regions(4, 3)
    assert len(regions) == 12
    assert all(r.n_pixels == 1 for r in regions)
    assert _coverage_ok(regions, 4, 3)


def test_pixel_region_flat_indices_row_major():
    r = PixelRegion(1, 1, 3, 3, width=4)
    np.testing.assert_array_equal(r.pixels, [5, 6, 9, 10])


def test_pixel_region_validation():
    with pytest.raises(ValueError):
        PixelRegion(2, 0, 2, 1, width=4)  # zero width
    with pytest.raises(ValueError):
        PixelRegion(0, 0, 5, 1, width=4)  # exceeds frame


def test_sequence_ranges_equal_split():
    assert sequence_ranges(45, 3) == [(0, 15), (15, 30), (30, 45)]


def test_sequence_ranges_weighted():
    """Paper testbed weights 2:1:1 give the fast machine half the frames."""
    ranges = sequence_ranges(44, 3, weights=[2.0, 1.0, 1.0])
    assert ranges == [(0, 22), (22, 33), (33, 44)]


def test_sequence_ranges_more_parts_than_frames():
    ranges = sequence_ranges(2, 5)
    assert ranges == [(0, 1), (1, 2)]


@given(
    n_frames=st.integers(1, 200),
    n_parts=st.integers(1, 12),
)
@settings(max_examples=60)
def test_sequence_ranges_cover_exactly(n_frames, n_parts):
    ranges = sequence_ranges(n_frames, n_parts)
    covered = []
    for a, b in ranges:
        assert a < b
        covered.extend(range(a, b))
    assert covered == list(range(n_frames))


def test_sequence_ranges_validation():
    with pytest.raises(ValueError):
        sequence_ranges(10, 0)
    with pytest.raises(ValueError):
        sequence_ranges(10, 2, weights=[1.0, -1.0])


def test_hybrid_tasks():
    tasks = hybrid_tasks(40, 30, 10, block_w=20, block_h=15, frames_per_chunk=4)
    # 4 blocks x 3 chunks (4+4+2).
    assert len(tasks) == 12
    regions = {t[0].label for t in tasks}
    assert len(regions) == 4
    chunks = {t[1] for t in tasks}
    assert chunks == {(0, 4), (4, 8), (8, 10)}
    with pytest.raises(ValueError):
        hybrid_tasks(40, 30, 10, 20, 15, 0)
