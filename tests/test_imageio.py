"""Tests for Targa/PPM I/O and Figure-2 image differencing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.imageio import (
    difference_mask_image,
    mask_stats,
    pixel_set_image,
    read_ppm,
    read_targa,
    targa_nbytes,
    write_ppm,
    write_targa,
)

small_image = arrays(np.uint8, (5, 7, 3), elements=st.integers(0, 255))


# -- Targa -------------------------------------------------------------------
def test_targa_roundtrip(tmp_path):
    img = np.arange(4 * 6 * 3, dtype=np.uint8).reshape(4, 6, 3)
    path = tmp_path / "t.tga"
    n = write_targa(path, img)
    assert n == targa_nbytes(6, 4)
    back = read_targa(path)
    np.testing.assert_array_equal(back, img)


@given(img=small_image)
@settings(max_examples=25)
def test_targa_roundtrip_random(img):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "x.tga"
        write_targa(path, img)
        np.testing.assert_array_equal(read_targa(path), img)


def test_targa_float_input(tmp_path):
    img = np.zeros((2, 2, 3))
    img[0, 0] = [1.0, 0.5, 0.0]
    path = tmp_path / "f.tga"
    write_targa(path, img)
    back = read_targa(path)
    np.testing.assert_array_equal(back[0, 0], [255, 128, 0])


def test_targa_nbytes_formula():
    # 18-byte header + 3 bytes per pixel: the paper's 320x240 frame.
    assert targa_nbytes(320, 240) == 18 + 320 * 240 * 3


def test_targa_bad_shape(tmp_path):
    with pytest.raises(ValueError):
        write_targa(tmp_path / "bad.tga", np.zeros((4, 4)))


def test_targa_read_rejects_other_formats(tmp_path):
    path = tmp_path / "bad.tga"
    path.write_bytes(b"\x00" * 18)  # image type 0
    with pytest.raises(ValueError):
        read_targa(path)


def test_targa_truncated(tmp_path):
    img = np.zeros((4, 4, 3), dtype=np.uint8)
    path = tmp_path / "t.tga"
    write_targa(path, img)
    path.write_bytes(path.read_bytes()[:-10])
    with pytest.raises(ValueError):
        read_targa(path)


# -- PPM -----------------------------------------------------------------------
def test_ppm_roundtrip(tmp_path):
    img = np.arange(3 * 5 * 3, dtype=np.uint8).reshape(3, 5, 3)
    path = tmp_path / "p.ppm"
    write_ppm(path, img)
    np.testing.assert_array_equal(read_ppm(path), img)


def test_ppm_with_comment(tmp_path):
    img = np.full((2, 2, 3), 7, dtype=np.uint8)
    path = tmp_path / "c.ppm"
    write_ppm(path, img)
    data = path.read_bytes().replace(b"P6\n", b"P6\n# a comment\n", 1)
    path.write_bytes(data)
    np.testing.assert_array_equal(read_ppm(path), img)


def test_ppm_bad_magic(tmp_path):
    path = tmp_path / "bad.ppm"
    path.write_bytes(b"P3\n1 1\n255\n000")
    with pytest.raises(ValueError):
        read_ppm(path)


# -- diff masks --------------------------------------------------------------------
def test_difference_mask():
    a = np.zeros((3, 3, 3))
    b = a.copy()
    b[1, 2] = 0.5
    mask = difference_mask_image(a, b)
    assert mask[1, 2] == 255
    assert mask.sum() == 255
    with pytest.raises(ValueError):
        difference_mask_image(a, np.zeros((2, 2, 3)))


def test_difference_mask_tolerance():
    a = np.zeros((2, 2, 3))
    b = a + 0.01
    assert difference_mask_image(a, b, tol=0.1).sum() == 0
    assert difference_mask_image(a, b, tol=0.001).sum() == 4 * 255


def test_pixel_set_image():
    img = pixel_set_image(np.array([0, 5]), width=3, height=2)
    assert img.shape == (2, 3)
    assert img[0, 0] == 255 and img[1, 2] == 255
    assert img.sum() == 2 * 255
    with pytest.raises(IndexError):
        pixel_set_image(np.array([6]), width=3, height=2)


def test_mask_stats_conservative():
    actual = np.zeros((4, 4), dtype=bool)
    actual[1, 1] = True
    predicted = np.zeros((4, 4), dtype=bool)
    predicted[1, 1] = predicted[1, 2] = True
    s = mask_stats(actual, predicted)
    assert s["actual"] == 1 and s["predicted"] == 2
    assert s["missed"] == 0
    assert s["overprediction"] == 2.0


def test_mask_stats_missed():
    actual = np.ones((2, 2), dtype=bool)
    predicted = np.zeros((2, 2), dtype=bool)
    s = mask_stats(actual, predicted)
    assert s["missed"] == 4
