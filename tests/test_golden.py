"""Golden-image regression tests.

Small renders of the two paper workloads are pinned against stored golden
arrays (``tests/data/golden_images.npz``).  A shading, intersection or
texture change that alters the pictures — even subtly — fails here first.
Tolerance is loose enough (1e-6) to survive numpy version differences in
summation order, tight enough to catch any real change.

To regenerate after an *intentional* change, run
``PYTHONPATH=src python tools/make_golden.py``.
"""

import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.render import RayTracer
from repro.scenes import brick_room_scene, newton_scene

DATA = Path(__file__).parent / "data" / "golden_images.npz"
REGENERATE = "regenerate with `PYTHONPATH=src python tools/make_golden.py`"
W, H = 40, 30


def _render(which: str) -> np.ndarray:
    scene = newton_scene(width=W, height=H) if which == "newton" else brick_room_scene(width=W, height=H)
    fb, _ = RayTracer(scene).render()
    return fb.as_image()


@pytest.fixture(scope="module")
def golden():
    if not DATA.exists():
        pytest.fail(f"golden data {DATA} missing; {REGENERATE}")
    try:
        with np.load(DATA) as z:
            return {"newton": z["newton"], "brick": z["brick"]}
    except (zipfile.BadZipFile, OSError, KeyError, ValueError) as exc:
        pytest.fail(f"golden data {DATA} is unreadable ({exc!r}); {REGENERATE}")


@pytest.mark.parametrize("which", ["newton", "brick"])
def test_render_matches_golden(which, golden):
    img = _render(which)
    np.testing.assert_allclose(
        img,
        golden[which],
        atol=1e-6,
        err_msg=f"{which} render drifted from the golden image — if the change "
        "is intentional, regenerate tests/data/golden_images.npz",
    )


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    import subprocess
    import sys

    sys.exit(
        subprocess.call([sys.executable, str(Path(__file__).parent.parent / "tools" / "make_golden.py")])
    )
