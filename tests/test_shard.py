"""Object-space sharding: partitioner, ray-batch codec, bit-exactness
vs the serial tracer, policy mechanics, and worker-loss replay.

The subsystem's correctness oracle is determinism: a sharded composite
must be bit-identical to ``RayTracer(scene).render()`` — including when
a shard owner dies mid-run and the master replays its in-flight ray
batches to the reassigned owner (DESIGN §16).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import protocol as wire
from repro.obs import RunLedger
from repro.obs.live import render_status
from repro.render import RayTracer
from repro.runtime import AnimationSpec
from repro.scene import split_coherent_sequences
from repro.scenes import ease_in_out_cubic, newton_animation, orbit_animation
from repro.scenes.stress import random_spheres_scene
from repro.sched import ObjectSpacePolicy, make_policy
from repro.shard import (
    LocalShardFarm,
    ShardOracle,
    ShardProfile,
    partition_scene,
    render_frame_sharded,
)
from repro.telemetry import SCHEMA_VERSION, InMemorySink, Telemetry, validate_events


@pytest.fixture(scope="module")
def newton_scene_small():
    return newton_animation(n_frames=1, width=48, height=36).scene_at(0)


@pytest.fixture(scope="module")
def stress_scene_small():
    return random_spheres_scene(n_spheres=20, seed=3, width=48, height=36)


# -- partitioner -----------------------------------------------------------------


@pytest.mark.parametrize("k", [2, 3, 4, 7])
def test_partition_balanced_and_total(stress_scene_small, k):
    smap = partition_scene(stress_scene_small, k)
    n = len(stress_scene_small.objects)
    assert smap.n_shards == k
    assert smap.n_objects == n
    # Totality: every object owned by exactly one shard, members ascending.
    owned = sorted(i for mem in smap.members for i in mem)
    assert owned == list(range(n))
    for s, mem in enumerate(smap.members):
        assert list(mem) == sorted(mem)
        assert all(smap.owner_of[i] == s for i in mem)
    # Spatial-median balance: object counts within one of each other.
    sizes = [len(mem) for mem in smap.members]
    assert max(sizes) - min(sizes) <= 1


def test_partition_clamps_to_object_count(newton_scene_small):
    smap = partition_scene(newton_scene_small, 100)
    assert smap.n_shards == len(newton_scene_small.objects)
    assert all(len(mem) == 1 for mem in smap.members)


def test_partition_deterministic(stress_scene_small):
    a = partition_scene(stress_scene_small, 5)
    b = partition_scene(stress_scene_small, 5)
    assert a.members == b.members
    assert np.array_equal(a.owner_of, b.owner_of)
    assert np.array_equal(a.domain_lo, b.domain_lo)
    assert np.array_equal(a.domain_hi, b.domain_hi)


def test_route_is_conservative(newton_scene_small):
    """Every object a ray can hit must belong to a routed shard."""
    scene = newton_scene_small
    smap = partition_scene(scene, 4)
    batch = scene.camera.rays_for_pixels(scene.camera.pixel_grid())
    mask = smap.route(batch.origins, batch.dirs)
    for i, obj in enumerate(scene.objects):
        t, _ = obj.intersect(batch.origins, batch.dirs)
        hit = np.isfinite(t) & (t > 1e-6)
        assert mask[hit, smap.owner_of[i]].all()


# -- ray-batch wire codec --------------------------------------------------------


@pytest.mark.parametrize("compress", [False, True])
def test_ray_batch_payload_roundtrip(compress):
    rng = np.random.default_rng(7)
    payload = {
        "rid": 42,
        "shard": 3,
        "op": "nearest",
        "origins": rng.normal(size=(257, 3)),
        "dirs": rng.normal(size=(257, 3)),
        "t_max": rng.exponential(size=257),
        "homes": rng.integers(-1, 4, size=257, dtype=np.int64),
        "spec": {"factory": "repro.scenes.newton:newton_animation", "kwargs": {"n_frames": 2}},
    }
    data = wire.encode(payload, compress_arrays=compress, compress_min_bytes=64)
    out = wire.decode(data)
    assert out["rid"] == 42 and out["op"] == "nearest"
    assert out["spec"]["kwargs"] == {"n_frames": 2}
    for key in ("origins", "dirs", "t_max", "homes"):
        assert out[key].dtype == payload[key].dtype
        assert np.array_equal(out[key], payload[key])


# -- bit-exactness vs the serial tracer ------------------------------------------


@pytest.mark.parametrize("k", [2, 3, 5])
def test_sharded_newton_bit_identical(newton_scene_small, k):
    serial, result = RayTracer(newton_scene_small).render()
    fb, sres, stats = render_frame_sharded(newton_scene_small, shards=k)
    assert np.array_equal(serial.data, fb.data)
    assert np.array_equal(result.colors, sres.colors)
    # Conservation: every served ray has a serving shard; locals are a subset.
    assert stats.rays_recv.sum() >= stats.rays_local.sum()
    assert stats.n_requests.sum() > 0


@pytest.mark.parametrize("k", [2, 4, 7])
def test_sharded_stress_bit_identical(stress_scene_small, k):
    serial, _ = RayTracer(stress_scene_small).render()
    fb, _, _ = render_frame_sharded(stress_scene_small, shards=k)
    assert np.array_equal(serial.data, fb.data)


def test_sharded_supersampling_bit_identical(newton_scene_small):
    serial, _ = RayTracer(newton_scene_small).render(samples_per_axis=2)
    fb, _, _ = render_frame_sharded(newton_scene_small, shards=3, samples_per_axis=2)
    assert np.array_equal(serial.data, fb.data)


def test_local_owner_kill_drill_bit_identical(stress_scene_small):
    """Replacing a shard owner mid-trace must not change a single bit —
    replies are pure functions of (scene, shard map, request)."""
    scene = stress_scene_small
    smap = partition_scene(scene, 4)
    farm = LocalShardFarm(scene, smap, kill_shard=1, kill_after_requests=5)
    serial, _ = RayTracer(scene).render()
    fb, _, _ = render_frame_sharded(scene, smap, farm=farm)
    assert farm.n_restarts == 1
    assert np.array_equal(serial.data, fb.data)


# -- the orbit workload ----------------------------------------------------------


def test_ease_in_out_cubic_shape():
    assert ease_in_out_cubic(0.0) == 0.0
    assert ease_in_out_cubic(0.5) == 0.5
    assert ease_in_out_cubic(1.0) == 1.0
    assert ease_in_out_cubic(-1.0) == 0.0 and ease_in_out_cubic(2.0) == 1.0
    samples = [ease_in_out_cubic(t) for t in np.linspace(0, 1, 33)]
    assert all(b >= a for a, b in zip(samples, samples[1:]))
    # Ease-in: slower than linear early, faster mid-curve.
    assert ease_in_out_cubic(0.25) < 0.25
    assert ease_in_out_cubic(0.75) > 0.75


def test_orbit_moving_camera_splits_per_frame():
    anim = orbit_animation(n_frames=5, width=32, height=24)
    assert anim.n_frames == 5
    assert split_coherent_sequences(anim) == [(f, f + 1) for f in range(5)]
    # The eased azimuth must cover the full revolution, endpoints exact.
    cams = [anim.scene_at(f).camera for f in range(5)]
    assert np.allclose(cams[0].position, cams[-1].position)
    assert not np.allclose(cams[0].position, cams[2].position)


def test_orbit_sharded_bit_identical():
    scene = orbit_animation(n_frames=3, width=40, height=30).scene_at(1)
    serial, _ = RayTracer(scene).render()
    fb, _, _ = render_frame_sharded(scene, shards=4)
    assert np.array_equal(serial.data, fb.data)


# -- the scheduling policy -------------------------------------------------------


def test_object_space_policy_affinity_and_handoff():
    p = make_policy("object-space", 2, n_regions=3, frames_per_chunk=1)
    assert isinstance(p, ObjectSpacePolicy)
    assert p.total_units == 6 and p.units_per_frame == 3
    p.allow_multi = True
    a0 = p.next_assignment("w0")
    a1 = p.next_assignment("w1")
    assert (a0.region_index, a1.region_index) == (0, 1)
    assert a0.fresh and a1.fresh
    assert p.shard_owner == {0: "w0", 1: "w1"}
    # w0's next pull prefers its own shard's later chunk over shard 2.
    p.on_result("w0", a0)
    a2 = p.next_assignment("w0")
    assert a2.region_index == 0 and a2.frame0 == 1
    assert not a2.fresh  # sticky ownership: no rebuild
    # Affinity beats the unbound FIFO head: w1 continues its own shard,
    # then picks up the never-bound shard 2 fresh.
    p.on_result("w1", a1)
    a3 = p.next_assignment("w1")
    assert a3.region_index == 1 and not a3.fresh
    p.on_result("w1", a3)
    a4 = p.next_assignment("w1")
    assert a4.region_index == 2 and a4.fresh
    assert p.n_steals == 0


def test_object_space_policy_multi_guard():
    p = ObjectSpacePolicy(2, 2, frames_per_chunk=1)
    p.next_assignment("w0")
    with pytest.raises(RuntimeError):
        p.next_assignment("w0")  # allow_multi defaults off


def test_object_space_policy_loss_requeues_front_and_unbinds():
    p = ObjectSpacePolicy(3, 1)
    p.allow_multi = True
    a0 = p.next_assignment("w0")
    a1 = p.next_assignment("w0")
    assert {a0.region_index, a1.region_index} == {0, 1}
    p.next_assignment("w1")
    p.on_worker_lost("w0")
    assert p.n_reassigned == 2
    assert 0 not in p.shard_owner and 1 not in p.shard_owner
    assert p.shard_owner == {2: "w1"}
    # Requeued units come back at the front, in original seq order, and
    # rebinding them to the survivor is a counted ownership steal.
    b0 = p.next_assignment("w1")
    b1 = p.next_assignment("w1")
    assert (b0.region_index, b1.region_index) == (0, 1)
    assert b0.fresh and b1.fresh
    assert p.n_steals == 0  # owner entries were cleared, not stolen live


# -- the cost oracle -------------------------------------------------------------


def test_shard_oracle_prices_and_scales(newton_scene_small):
    _, result, stats = render_frame_sharded(newton_scene_small, shards=3)
    rays = int(result.rays_per_pixel.sum())
    profile = ShardProfile.from_stats([(stats, rays)], newton_scene_small.camera.n_pixels)
    assert profile.fanout() >= 1.0
    oracle = ShardOracle(profile, n_shards=3)
    big = ShardOracle(profile, n_shards=300)
    assert 1.0 <= big.fanout <= 300
    assert big.fanout >= oracle.fanout  # fan-out grows as domains shrink
    p = ObjectSpacePolicy(3, 1)
    p.allow_multi = True
    log = [p.next_assignment("w0") for _ in range(3)]
    assert oracle.total_rays_of_log(log) > 0
    assert oracle.ray_bytes_of_log(log) > 0
    cost = oracle.assignment_cost(log[0])
    assert cost.reply_bytes > 0 and cost.rays > 0


# -- telemetry + live status -----------------------------------------------------


def _event(name, **attrs):
    return {"v": SCHEMA_VERSION, "type": "event", "name": name, "t": 0.0, "attrs": attrs}


def test_shard_events_validate_and_fold_into_ledger():
    sink = InMemorySink()
    tel = Telemetry(sinks=[sink])
    tel.event("shard.rays", worker="w0", shard=0, frame=0, n_local=90, n_forwarded=10)
    tel.event("shard.xfer", worker="w0", shard=0, frame=0, n_rays=100, nbytes=4096)
    validate_events(sink.events)

    led = RunLedger(clock=lambda: 0.0)
    led.emit(_event("shard.rays", worker="w0", shard=0, frame=0, n_local=90, n_forwarded=10))
    led.emit(_event("shard.rays", worker="w1", shard=1, frame=0, n_local=70, n_forwarded=30))
    led.emit(_event("shard.xfer", worker="w0", shard=0, frame=0, n_rays=100, nbytes=4096))
    snap = led.snapshot()
    assert snap["n_shards"] == 2
    assert snap["shard_bytes"] == 4096
    rows = {w["worker"]: w for w in snap["workers"]}
    assert rows["w0"]["shards"] == [0]
    assert rows["w0"]["rays_local"] == 90
    assert rows["w0"]["rays_forwarded"] == 10
    assert rows["w0"]["rays_received"] == 100
    view = render_status(snap)
    assert "object-space: 2 shards" in view
    assert "shards [0]" in view


# -- the TCP farm ----------------------------------------------------------------


def _render_serial(spec, n_frames):
    anim = spec.build()
    out = []
    for f in range(n_frames):
        fb, _ = RayTracer(anim.scene_at(f)).render()
        out.append(fb)
    return out


def test_tcp_sharded_bit_identical():
    from repro.shard.net import render_sharded_tcp

    spec = AnimationSpec.newton(n_frames=2, width=72, height=54)
    session, outcome = render_sharded_tcp(spec, frames=2, shards=3, n_workers=2)
    assert session.done and len(session.frames) == 2
    assert outcome.net.n_losses == 0
    for serial, sharded in zip(_render_serial(spec, 2), session.frames):
        assert np.array_equal(serial.data, sharded.data)


def test_tcp_owner_kill_replays_bit_identical():
    """Kill a shard owner mid-run: the ledger replays its in-flight ray
    batches to the reassigned owner and the composite stays bit-identical."""
    from repro.shard.net import render_sharded_tcp

    spec = AnimationSpec.newton(n_frames=2, width=72, height=54)
    sink = InMemorySink()
    session, outcome = render_sharded_tcp(
        spec,
        frames=2,
        shards=3,
        n_workers=2,
        die_after_rays={0: 6},
        telemetry=Telemetry(sinks=[sink]),
    )
    assert outcome.net.n_losses >= 1
    assert session.n_replays >= 1
    # The dispatch log exceeds the unit count (one per shard) by the
    # units reassigned after the loss.
    assert len(outcome.assignments) > 3
    for serial, sharded in zip(_render_serial(spec, 2), session.frames):
        assert np.array_equal(serial.data, sharded.data)
    validate_events(sink.events)
    names = {r.get("name") for r in sink.events}
    assert "shard.rays" in names and "shard.xfer" in names
