"""Tests for materials and procedural textures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.materials import (
    Agate,
    Brick,
    Checker,
    Finish,
    Gradient,
    Marble,
    Material,
    SolidColor,
)
from repro.rmath import Transform

points = arrays(
    np.float64,
    (16, 3),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


# -- Finish validation --------------------------------------------------------
def test_finish_defaults_valid():
    f = Finish()
    assert not f.is_reflective and not f.is_transmissive


def test_finish_flags():
    assert Finish(reflection=0.5).is_reflective
    assert Finish(transmission=0.5).is_transmissive


@pytest.mark.parametrize(
    "kwargs",
    [
        {"ambient": -0.1},
        {"diffuse": -1.0},
        {"reflection": 1.5},
        {"transmission": 2.0},
        {"phong_size": 0.0},
        {"ior": -1.0},
    ],
)
def test_finish_validation(kwargs):
    with pytest.raises(ValueError):
        Finish(**kwargs)


# -- SolidColor -----------------------------------------------------------------
def test_solid_color_constant():
    t = SolidColor((0.2, 0.4, 0.6))
    p = np.random.default_rng(0).uniform(-5, 5, (10, 3))
    c = t.color_at(p)
    assert c.shape == (10, 3)
    assert np.all(c == [0.2, 0.4, 0.6])


def test_negative_color_rejected():
    with pytest.raises(ValueError):
        SolidColor((-0.1, 0, 0))


# -- Checker -----------------------------------------------------------------------
def test_checker_alternates():
    t = Checker((1, 1, 1), (0, 0, 0))
    p = np.array([[0.5, 0.5, 0.5], [1.5, 0.5, 0.5], [1.5, 1.5, 0.5], [0.5, 0.5, 1.5]])
    c = t.color_at(p)
    np.testing.assert_array_equal(c[0], [1, 1, 1])
    np.testing.assert_array_equal(c[1], [0, 0, 0])
    np.testing.assert_array_equal(c[2], [1, 1, 1])
    np.testing.assert_array_equal(c[3], [0, 0, 0])


def test_checker_stable_on_integer_plane():
    """Points exactly on y=0 (a floor) must not flicker between cells."""
    t = Checker((1, 1, 1), (0, 0, 0))
    p = np.array([[0.5, 0.0, 0.5], [0.5, 1e-12, 0.5], [0.5, -1e-12, 0.5]])
    c = t.color_at(p)
    assert np.all(c == c[0])


@given(points)
@settings(max_examples=40)
def test_checker_only_two_colors(p):
    t = Checker((1, 0, 0), (0, 0, 1))
    c = t.color_at(p)
    for row in c:
        assert tuple(row) in {(1.0, 0.0, 0.0), (0.0, 0.0, 1.0)}


# -- Brick ------------------------------------------------------------------------
def test_brick_mortar_lines():
    t = Brick(brick_color=(1, 0, 0), mortar_color=(0, 1, 0), brick_size=(8, 3, 4.5), mortar=0.5)
    # A point on a course boundary (y = 0) is mortar.
    mortar_pt = np.array([[4.0, 0.1, 2.0]])
    np.testing.assert_array_equal(t.color_at(mortar_pt), [[0, 1, 0]])
    # Deep inside a brick body.
    brick_pt = np.array([[4.0, 1.5, 2.0]])
    np.testing.assert_array_equal(t.color_at(brick_pt), [[1, 0, 0]])


def test_brick_courses_stagger():
    """Adjacent courses shift by half a brick (running bond)."""
    t = Brick(brick_color=(1, 0, 0), mortar_color=(0, 1, 0), brick_size=(8, 3, 4.5), mortar=0.5)
    # x=0.2 is mortar (x-joint) in course 0 but mid-brick in course 1.
    course0 = np.array([[0.2, 1.5, 2.0]])
    course1 = np.array([[0.2, 4.5, 2.0]])
    assert tuple(t.color_at(course0)[0]) == (0, 1, 0)
    assert tuple(t.color_at(course1)[0]) == (1, 0, 0)


def test_brick_validation():
    with pytest.raises(ValueError):
        Brick(brick_size=(0, 3, 4))
    with pytest.raises(ValueError):
        Brick(mortar=5.0)


@given(points)
@settings(max_examples=30)
def test_brick_only_two_colors(p):
    t = Brick(brick_color=(1, 0, 0), mortar_color=(0, 0, 1))
    for row in t.color_at(p):
        assert tuple(row) in {(1.0, 0.0, 0.0), (0.0, 0.0, 1.0)}


# -- Marble / Agate / Gradient -------------------------------------------------------
@given(points)
@settings(max_examples=30)
def test_marble_in_color_hull(p):
    t = Marble((1, 1, 1), (0, 0, 0))
    c = t.color_at(p)
    assert np.all(c >= -1e-9) and np.all(c <= 1 + 1e-9)


def test_marble_deterministic():
    t = Marble()
    p = np.random.default_rng(1).uniform(-3, 3, (20, 3))
    np.testing.assert_array_equal(t.color_at(p), t.color_at(p))


@given(points)
@settings(max_examples=30)
def test_agate_in_color_hull(p):
    t = Agate((1, 0.5, 0.25), (0, 0, 0))
    c = t.color_at(p)
    assert np.all(c >= -1e-9) and np.all(c <= 1 + 1e-9)


def test_gradient_endpoints():
    t = Gradient((1, 0, 0), (0, 0, 0), (1, 1, 1))
    c = t.color_at(np.array([[0.0, 0, 0], [0.5, 0, 0]]))
    np.testing.assert_allclose(c[0], [0, 0, 0], atol=1e-12)
    np.testing.assert_allclose(c[1], [0.5, 0.5, 0.5], atol=1e-12)


def test_gradient_zero_axis_rejected():
    with pytest.raises(ValueError):
        Gradient((0, 0, 0), (0, 0, 0), (1, 1, 1))


# -- pattern transforms ------------------------------------------------------------
def test_texture_scaled():
    t = Checker((1, 1, 1), (0, 0, 0)).scaled(2.0)
    # With a 2x pattern scale, cell boundaries sit at even coordinates.
    c = t.color_at(np.array([[1.5, 0.5, 0.5], [2.5, 0.5, 0.5]]))
    np.testing.assert_array_equal(c[0], [1, 1, 1])
    np.testing.assert_array_equal(c[1], [0, 0, 0])


def test_texture_transform_applied_inverse():
    t = Checker((1, 1, 1), (0, 0, 0), transform=Transform.translate(1, 0, 0))
    # Point (1.5, .5, .5) in world = (0.5, .5, .5) in pattern space -> color A.
    c = t.color_at(np.array([[1.5, 0.5, 0.5]]))
    np.testing.assert_array_equal(c[0], [1, 1, 1])


# -- Material -------------------------------------------------------------------------
def test_material_factories():
    assert Material.chrome().finish.is_reflective
    g = Material.glass()
    assert g.finish.is_transmissive and g.finish.ior == 1.5
    assert Material.mirror().finish.reflection > 0.9
    m = Material.matte((0.5, 0.5, 0.5))
    assert not m.finish.is_reflective and not m.finish.is_transmissive


def test_material_color_at_delegates():
    m = Material.matte((0.25, 0.5, 0.75))
    c = m.color_at(np.zeros((2, 3)))
    np.testing.assert_array_equal(c, [[0.25, 0.5, 0.75]] * 2)
