"""Tests for the simulation timeline renderer."""

import pytest

from repro.cluster import (
    Compute,
    Machine,
    Recv,
    Send,
    VirtualPVM,
    machine_busy_intervals,
    render_timeline,
)


def _traced_run():
    machines = [Machine("fast", 2.0, 64), Machine("slow", 1.0, 32)]
    pvm = VirtualPVM(machines, sec_per_work_unit=0.01)
    pvm.tracing = True

    def worker(master_tid):
        while True:
            msg = yield Recv()
            if msg.tag == "stop":
                return
            yield Compute(units=msg.payload)
            yield Send(master_tid, 5000, None, tag="done")

    def master(tids):
        for tid in tids:
            yield Send(tid, 100, 500.0, tag="work")
        for _ in tids:
            yield Recv(tag="done")
        for tid in tids:
            yield Send(tid, 10, None, tag="stop")

    tids = [pvm.spawn(worker(3), m.name) for m in machines]
    pvm.spawn(master(tids), "fast", name="master")
    pvm.run()
    return pvm


def test_events_recorded():
    pvm = _traced_run()
    kinds = {e[0] for e in pvm.events}
    assert "compute" in kinds and "send" in kinds


def test_busy_intervals_match_totals():
    pvm = _traced_run()
    intervals = machine_busy_intervals(pvm)
    busy = pvm.cpu_busy_seconds()
    for name, ivals in intervals.items():
        total = sum(e - s for s, e in ivals)
        assert total == pytest.approx(busy[name])


def test_render_timeline_structure():
    pvm = _traced_run()
    text = render_timeline(pvm, width=32)
    lines = text.splitlines()
    assert "virtual time" in lines[0]
    assert any(line.strip().startswith("fast") for line in lines)
    assert any(line.strip().startswith("slow") for line in lines)
    assert "ethernet" in lines[-1]
    assert "msgs" in lines[-1]
    # The slow machine computes for the full horizon -> mostly '#'.
    slow_line = next(line for line in lines if line.strip().startswith("slow"))
    assert slow_line.count("#") > 20


def test_render_timeline_requires_tracing():
    pvm = VirtualPVM([Machine("m", 1.0, 32)], sec_per_work_unit=0.01)

    def work():
        yield Compute(units=10)

    pvm.spawn(work(), "m")
    pvm.run()
    with pytest.raises(ValueError, match="tracing"):
        render_timeline(pvm)


def test_render_timeline_width_validation():
    pvm = _traced_run()
    with pytest.raises(ValueError):
        render_timeline(pvm, width=4)


def test_strategy_trace_integration(tiny_oracle):
    from repro.cluster import ThrashModel, ncsu_testbed
    from repro.parallel import RenderFarmConfig, simulate_frame_division_fc

    out = simulate_frame_division_fc(
        tiny_oracle,
        ncsu_testbed(),
        RenderFarmConfig(),
        sec_per_work_unit=1e-4,
        thrash=ThrashModel(alpha=0.0),
        trace=True,
    )
    assert out.timeline is not None
    assert "ethernet" in out.timeline
    # Untraced runs carry no timeline.
    out2 = simulate_frame_division_fc(
        tiny_oracle,
        ncsu_testbed(),
        RenderFarmConfig(),
        sec_per_work_unit=1e-4,
        thrash=ThrashModel(alpha=0.0),
    )
    assert out2.timeline is None
