"""Tests for the POV-like scene description language."""

import numpy as np
import pytest

from repro.geometry import Box, Cylinder, Disc, Plane, Sphere
from repro.materials import Brick, Checker, Gradient, Marble, SolidColor
from repro.scene import SceneParseError, load_scene, parse_scene

MINIMAL = "camera { location <0,0,-5> look_at <0,0,0> }"


def test_minimal_scene():
    s = parse_scene(MINIMAL)
    assert s.camera.width == 320 and s.camera.height == 240
    assert s.objects == [] and s.lights == []


def test_camera_attributes():
    s = parse_scene(
        "camera { location <1,2,3> look_at <0,0,0> angle 45 width 64 height 48 up <0,1,0> }"
    )
    np.testing.assert_array_equal(s.camera.position, [1, 2, 3])
    assert s.camera.fov_degrees == 45
    assert (s.camera.width, s.camera.height) == (64, 48)


def test_camera_missing_location():
    with pytest.raises(SceneParseError):
        parse_scene("camera { look_at <0,0,0> }")


def test_no_camera_rejected():
    with pytest.raises(SceneParseError):
        parse_scene("background { rgb <0,0,0> }")


def test_background_and_globals():
    s = parse_scene(
        MINIMAL
        + " background { rgb <0.1, 0.2, 0.3> }"
        + " global_settings { max_trace_level 3 ambient_light rgb <0.5,0.5,0.5> }"
    )
    np.testing.assert_allclose(s.background, [0.1, 0.2, 0.3])
    assert s.max_depth == 3
    np.testing.assert_allclose(s.ambient_light, [0.5] * 3)


def test_light_source():
    s = parse_scene(MINIMAL + " light_source { <1,2,3>, rgb <1,1,0.9> }")
    assert len(s.lights) == 1
    np.testing.assert_array_equal(s.lights[0].position, [1, 2, 3])


def test_all_primitives_parse():
    s = parse_scene(
        MINIMAL
        + """
        sphere { <0,1,0>, 0.5 }
        plane { <0,1,0>, 0 }
        cylinder { <0,0,0>, <0,2,0>, 0.3 }
        box { <0,0,0>, <1,1,1> }
        disc { <0,3,0>, <0,1,0>, 1.5 }
        """
    )
    kinds = [type(o) for o in s.objects]
    assert kinds == [Sphere, Plane, Cylinder, Box, Disc]


def test_named_object():
    s = parse_scene(MINIMAL + ' sphere { <0,0,0>, 1 name "hero" }')
    assert s.objects[0].name == "hero"


def test_pigment_types():
    s = parse_scene(
        MINIMAL
        + """
        sphere { <0,0,0>, 1 texture { pigment { rgb <1,0,0> } } }
        sphere { <2,0,0>, 1 texture { pigment { checker rgb <1,1,1> rgb <0,0,0> } } }
        sphere { <4,0,0>, 1 texture { pigment { marble rgb <1,1,1> rgb <0,0,0> } } }
        sphere { <6,0,0>, 1 texture { pigment { brick } } }
        sphere { <8,0,0>, 1 texture { pigment { gradient <0,1,0> rgb <0,0,0> rgb <1,1,1> } } }
        """
    )
    pigment_types = [type(o.material.pigment) for o in s.objects]
    assert pigment_types == [SolidColor, Checker, Marble, Brick, Gradient]


def test_finish_attributes():
    s = parse_scene(
        MINIMAL
        + """sphere { <0,0,0>, 1
              texture { finish { ambient 0.1 diffuse 0.5 specular 0.8
                                 phong_size 100 reflection 0.2 transmission 0.3 ior 1.4 } } }"""
    )
    f = s.objects[0].material.finish
    assert f.ambient == 0.1 and f.diffuse == 0.5 and f.specular == 0.8
    assert f.phong_size == 100 and f.reflection == 0.2
    assert f.transmission == 0.3 and f.ior == 1.4


def test_object_transforms():
    s = parse_scene(MINIMAL + " sphere { <0,0,0>, 1 translate <5,0,0> }")
    b = s.objects[0].bounds()
    np.testing.assert_allclose(b.center, [5, 0, 0], atol=1e-12)


def test_pattern_scale():
    s = parse_scene(
        MINIMAL + " sphere { <0,0,0>, 1 texture { pigment { checker rgb <1,1,1> rgb <0,0,0> scale 2 } } }"
    )
    tex = s.objects[0].material.pigment
    c = tex.color_at(np.array([[1.5, 0.5, 0.5]]))
    np.testing.assert_array_equal(c[0], [1, 1, 1])


def test_comments_ignored():
    s = parse_scene("// a comment\n# another\n" + MINIMAL)
    assert s.camera is not None


def test_error_reports_line_number():
    with pytest.raises(SceneParseError) as err:
        parse_scene("camera { location <0,0,-5> look_at <0,0,0> }\nsphere { oops }")
    assert err.value.line == 2


def test_unknown_block_rejected():
    with pytest.raises(SceneParseError):
        parse_scene(MINIMAL + " torus { }")


def test_unexpected_character():
    with pytest.raises(SceneParseError):
        parse_scene("camera @ {}")


def test_load_scene(tmp_path):
    path = tmp_path / "s.sdl"
    path.write_text(MINIMAL + " sphere { <0,0,0>, 1 }")
    s = load_scene(path)
    assert len(s.objects) == 1


def test_parsed_scene_renders(simple_scene):
    """A parsed scene goes through the full tracer without error."""
    from repro.render import RayTracer

    text = (
        "camera { location <0,2,-6> look_at <0,1,0> width 24 height 18 }"
        " light_source { <5,8,-5>, rgb <1,1,1> }"
        " plane { <0,1,0>, 0 texture { pigment { checker rgb <1,1,1> rgb <0,0,0> } } }"
        " sphere { <0,1,0>, 0.8 texture { finish { reflection 0.5 } } }"
    )
    fb, res = RayTracer(parse_scene(text)).render()
    assert res.stats.camera == 24 * 18
    assert res.stats.reflected > 0
    assert res.stats.shadow > 0


def test_object_rotate_vector():
    s = parse_scene(MINIMAL + " box { <0,0,0>, <1,1,1> rotate <0, 45, 0> }")
    b = s.objects[0].bounds()
    assert b.extent[0] == pytest.approx(np.sqrt(2), rel=1e-9)
    assert b.extent[1] == pytest.approx(1.0, rel=1e-9)


def test_object_scale_vector():
    s = parse_scene(MINIMAL + " sphere { <0,0,0>, 1 scale <2, 1, 0.5> }")
    b = s.objects[0].bounds()
    np.testing.assert_allclose(b.extent, [4.0, 2.0, 1.0], atol=1e-9)


def test_declared_color_unknown_name_rejected():
    with pytest.raises(SceneParseError):
        parse_scene(MINIMAL + " background { rgb NotDeclared }")


def test_declare_and_reuse_texture():
    s = parse_scene(
        "#declare Red = texture { pigment { rgb <1,0,0> } }\n"
        + MINIMAL
        + " sphere { <0,0,0>, 1 texture Red } sphere { <2,0,0>, 1 texture { Red } }"
    )
    for obj in s.objects:
        np.testing.assert_array_equal(obj.material.color_at(np.zeros((1, 3)))[0], [1, 0, 0])


def test_declare_bad_target_rejected():
    with pytest.raises(SceneParseError):
        parse_scene("#declare X = sphere { <0,0,0>, 1 }\n" + MINIMAL)


def test_agate_pigment():
    from repro.materials import Agate

    s = parse_scene(
        MINIMAL + " sphere { <0,0,0>, 1 texture { pigment { agate rgb <1,0.5,0.2> rgb <0.2,0.1,0> } } }"
    )
    assert isinstance(s.objects[0].material.pigment, Agate)
