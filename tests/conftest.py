"""Shared fixtures: small scenes, animations and a tiny cost oracle.

Everything here is deliberately low-resolution so the full suite runs in
seconds; the benchmarks exercise paper-scale parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Plane, Sphere
from repro.lighting import PointLight
from repro.materials import Checker, Material
from repro.parallel import build_oracle
from repro.rmath import Transform
from repro.scene import Camera, FunctionAnimation, Scene
from repro.scenes import newton_animation


@pytest.fixture
def simple_scene() -> Scene:
    """Floor + chrome ball + glass ball + matte ball, one light."""
    cam = Camera(position=(0, 2, -6), look_at=(0, 1, 0), width=48, height=36, fov_degrees=60)
    objects = [
        Plane.from_normal(
            (0, 1, 0),
            0.0,
            material=Material.textured(Checker((1, 1, 1), (0.1, 0.1, 0.1))),
            name="floor",
        ),
        Sphere.at((0, 1, 0), 0.8, material=Material.chrome(), name="chrome"),
        Sphere.at((1.6, 0.6, -1.2), 0.6, material=Material.glass(), name="glass"),
        Sphere.at((-1.8, 0.5, 0.8), 0.5, material=Material.matte((0.8, 0.2, 0.2)), name="matte"),
    ]
    return Scene(
        camera=cam,
        objects=objects,
        lights=[PointLight(np.array([5.0, 8.0, -5.0]), np.array([1.0, 1.0, 1.0]))],
        background=np.array([0.2, 0.3, 0.5]),
    )


@pytest.fixture
def moving_ball_animation(simple_scene) -> FunctionAnimation:
    """The matte ball slides along +x, everything else static."""
    return FunctionAnimation(
        simple_scene,
        n_frames=4,
        motions={"matte": lambda f: Transform.translate(0.3 * f, 0.0, 0.0)},
    )


@pytest.fixture(scope="session")
def tiny_newton_animation():
    return newton_animation(n_frames=5, width=64, height=48)


@pytest.fixture(scope="session")
def tiny_oracle(tiny_newton_animation):
    """A real measured oracle of a 5-frame 64x48 Newton run (built once)."""
    return build_oracle(tiny_newton_animation, grid_resolution=16)
