"""Tests for Framebuffer and RayStats."""

import numpy as np
import pytest

from repro.geometry import RayKind
from repro.render import Framebuffer, RayStats


def test_framebuffer_scatter_gather():
    fb = Framebuffer(4, 3)
    ids = np.array([0, 5, 11])
    colors = np.array([[1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]])
    fb.scatter(ids, colors)
    np.testing.assert_array_equal(fb.gather(ids), colors)
    assert np.all(fb.gather(np.array([1])) == 0)


def test_framebuffer_accumulate_duplicates():
    fb = Framebuffer(2, 2)
    fb.accumulate(np.array([0, 0, 0]), np.ones((3, 3)))
    np.testing.assert_array_equal(fb.data[0], [3, 3, 3])


def test_framebuffer_out_of_range():
    fb = Framebuffer(2, 2)
    with pytest.raises(IndexError):
        fb.scatter(np.array([4]), np.ones((1, 3)))


def test_framebuffer_as_image_shape():
    fb = Framebuffer(4, 3)
    assert fb.as_image().shape == (3, 4, 3)


def test_to_uint8_clamps_and_rounds():
    fb = Framebuffer(2, 1)
    fb.scatter(np.array([0, 1]), np.array([[2.0, -1.0, 0.5], [1.0, 0.0, 0.25]]))
    img = fb.to_uint8()
    np.testing.assert_array_equal(img[0, 0], [255, 0, 128])
    np.testing.assert_array_equal(img[0, 1], [255, 0, 64])


def test_diff_mask():
    a = Framebuffer(2, 2)
    b = a.copy()
    b.scatter(np.array([3]), np.array([[0.5, 0, 0]]))
    mask = a.diff_mask(b)
    np.testing.assert_array_equal(mask, [False, False, False, True])
    with pytest.raises(ValueError):
        a.diff_mask(Framebuffer(3, 3))


def test_framebuffer_validation():
    with pytest.raises(ValueError):
        Framebuffer(0, 2)


# -- RayStats ----------------------------------------------------------------
def test_stats_record_and_props():
    s = RayStats()
    s.record(RayKind.CAMERA, 10)
    s.record(RayKind.SHADOW, 5)
    s.record(RayKind.REFLECTED, 3)
    s.record(RayKind.REFRACTED, 2)
    assert (s.camera, s.shadow, s.reflected, s.refracted) == (10, 5, 3, 2)
    assert s.total == 20


def test_stats_add_and_iadd():
    a = RayStats()
    a.record(RayKind.CAMERA, 1)
    b = RayStats()
    b.record(RayKind.SHADOW, 2)
    c = a + b
    assert c.total == 3
    a += b
    assert a.total == 3
    assert b.total == 2  # unchanged


def test_stats_copy_independent():
    a = RayStats()
    a.record(RayKind.CAMERA, 1)
    b = a.copy()
    b.record(RayKind.CAMERA, 1)
    assert a.camera == 1 and b.camera == 2


def test_stats_as_dict():
    s = RayStats()
    s.record(RayKind.CAMERA, 7)
    d = s.as_dict()
    assert d["camera"] == 7 and d["total"] == 7
