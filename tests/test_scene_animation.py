"""Tests for Scene, Animation and coherent-sequence splitting."""

import numpy as np
import pytest

from repro.geometry import Plane, Sphere
from repro.lighting import PointLight
from repro.materials import Material
from repro.rmath import Transform
from repro.scene import (
    Camera,
    FunctionAnimation,
    Scene,
    StaticAnimation,
    split_coherent_sequences,
)


def _scene():
    cam = Camera(position=(0, 1, -5), look_at=(0, 1, 0), width=16, height=12)
    return Scene(
        camera=cam,
        objects=[
            Plane.from_normal((0, 1, 0), 0.0, material=Material.matte((1, 1, 1)), name="floor"),
            Sphere.at((0, 1, 0), 1.0, material=Material.matte((1, 0, 0)), name="ball"),
        ],
        lights=[PointLight(np.array([0, 5, -5.0]), np.ones(3))],
    )


def test_duplicate_object_rejected():
    s = _scene()
    with pytest.raises(ValueError):
        Scene(camera=s.camera, objects=[s.objects[0], s.objects[0]])


def test_object_by_name():
    s = _scene()
    assert s.object_by_name("ball").name == "ball"
    with pytest.raises(KeyError):
        s.object_by_name("nope")


def test_finite_bounds_skips_plane():
    s = _scene()
    b = s.finite_bounds()
    np.testing.assert_allclose(b.lo, [-1, 0, -1])
    np.testing.assert_allclose(b.hi, [1, 2, 1])


def test_world_bounds_padded():
    s = _scene()
    wb = s.world_bounds()
    fb = s.finite_bounds()
    assert np.all(wb.lo < fb.lo) and np.all(wb.hi > fb.hi)


def test_world_bounds_empty_scene_falls_back():
    cam = Camera(position=(0, 1, -5), look_at=(0, 1, 0), width=4, height=4)
    s = Scene(camera=cam, objects=[], lights=[])
    assert not s.world_bounds().is_empty()


def test_replaced_objects_shares_settings():
    s = _scene()
    s2 = s.replaced_objects([s.objects[0]])
    assert s2.camera is s.camera
    assert len(s2.objects) == 1
    np.testing.assert_array_equal(s2.background, s.background)


def test_max_depth_validation():
    s = _scene()
    with pytest.raises(ValueError):
        Scene(camera=s.camera, max_depth=0)


# -- animations ----------------------------------------------------------------
def test_static_animation():
    s = _scene()
    anim = StaticAnimation(s, 3)
    assert anim.scene_at(0) is anim.scene_at(2)
    with pytest.raises(IndexError):
        anim.scene_at(3)


def test_function_animation_moves_named_object():
    s = _scene()
    anim = FunctionAnimation(
        s, 3, motions={"ball": lambda f: Transform.translate(float(f), 0, 0)}
    )
    b0 = anim.scene_at(0).object_by_name("ball").bounds()
    b2 = anim.scene_at(2).object_by_name("ball").bounds()
    np.testing.assert_allclose(b2.lo - b0.lo, [2, 0, 0], atol=1e-12)


def test_function_animation_preserves_prim_ids():
    s = _scene()
    anim = FunctionAnimation(s, 2, motions={"ball": lambda f: Transform.translate(f, 0, 0)})
    ids0 = {o.name: o.prim_id for o in anim.scene_at(0).objects}
    ids1 = {o.name: o.prim_id for o in anim.scene_at(1).objects}
    assert ids0 == ids1


def test_function_animation_unknown_motion_target():
    s = _scene()
    with pytest.raises(KeyError):
        FunctionAnimation(s, 2, motions={"ghost": lambda f: Transform.identity()})


def test_function_animation_static_objects_shared():
    s = _scene()
    anim = FunctionAnimation(s, 2, motions={"ball": lambda f: Transform.translate(f, 0, 0)})
    assert anim.scene_at(1).object_by_name("floor") is s.object_by_name("floor")


def test_zero_frames_rejected():
    with pytest.raises(ValueError):
        StaticAnimation(_scene(), 0)


# -- coherent sequence splitting -----------------------------------------------
def test_split_static_camera_single_range():
    anim = StaticAnimation(_scene(), 5)
    assert split_coherent_sequences(anim) == [(0, 5)]


def test_split_on_camera_cut():
    s = _scene()

    def camera_fn(f):
        if f < 3:
            return Camera(position=(0, 1, -5), look_at=(0, 1, 0), width=16, height=12)
        return Camera(position=(5, 1, -5), look_at=(0, 1, 0), width=16, height=12)

    anim = FunctionAnimation(s, 6, camera_fn=camera_fn)
    assert split_coherent_sequences(anim) == [(0, 3), (3, 6)]


def test_split_every_frame_moving_camera():
    s = _scene()
    anim = FunctionAnimation(
        s,
        4,
        camera_fn=lambda f: Camera(
            position=(f * 0.1, 1, -5), look_at=(0, 1, 0), width=16, height=12
        ),
    )
    assert split_coherent_sequences(anim) == [(0, 1), (1, 2), (2, 3), (3, 4)]
