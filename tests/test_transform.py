"""Tests for affine transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rmath import AABB, Transform, vec3

angle = st.floats(-np.pi, np.pi, allow_nan=False)
coord = st.floats(-20, 20, allow_nan=False)


def test_identity():
    t = Transform.identity()
    assert t.is_identity()
    p = np.array([[1.0, 2.0, 3.0]])
    np.testing.assert_array_equal(t.apply_points(p), p)


def test_translate_points_not_vectors():
    t = Transform.translate(1, 2, 3)
    p = np.array([[0.0, 0.0, 0.0]])
    np.testing.assert_allclose(t.apply_points(p), [[1, 2, 3]])
    np.testing.assert_allclose(t.apply_vectors(p + 1.0), [[1, 1, 1]])


def test_scale():
    t = Transform.scale(2, 3, 4)
    np.testing.assert_allclose(t.apply_points(np.array([[1.0, 1, 1]])), [[2, 3, 4]])


def test_scale_zero_rejected():
    with pytest.raises(ValueError):
        Transform.scale(0.0)


def test_rotations_quarter_turn():
    p = np.array([[1.0, 0.0, 0.0]])
    np.testing.assert_allclose(
        Transform.rotate_z(np.pi / 2).apply_points(p), [[0, 1, 0]], atol=1e-12
    )
    np.testing.assert_allclose(
        Transform.rotate_y(np.pi / 2).apply_points(p), [[0, 0, -1]], atol=1e-12
    )
    py = np.array([[0.0, 1.0, 0.0]])
    np.testing.assert_allclose(
        Transform.rotate_x(np.pi / 2).apply_points(py), [[0, 0, 1]], atol=1e-12
    )


@given(angle, st.tuples(coord, coord, coord).filter(lambda a: np.linalg.norm(a) > 1e-3))
@settings(max_examples=60)
def test_rotate_axis_preserves_lengths(theta, axis):
    t = Transform.rotate_axis(np.asarray(axis), theta)
    p = np.array([[1.0, 2.0, 3.0]])
    q = t.apply_points(p)
    assert np.linalg.norm(q) == pytest.approx(np.linalg.norm(p), rel=1e-9)


def test_rotate_axis_matches_rotate_z():
    a = Transform.rotate_axis(np.array([0, 0, 1.0]), 0.7)
    b = Transform.rotate_z(0.7)
    np.testing.assert_allclose(a.m, b.m, atol=1e-12)


def test_rotate_axis_zero_rejected():
    with pytest.raises(ValueError):
        Transform.rotate_axis(np.zeros(3), 1.0)


def test_composition_order():
    # (a @ b)(p) == a(b(p))
    a = Transform.translate(1, 0, 0)
    b = Transform.scale(2)
    p = np.array([[1.0, 1.0, 1.0]])
    np.testing.assert_allclose((a @ b).apply_points(p), a.apply_points(b.apply_points(p)))


def test_then_is_reverse_composition():
    a = Transform.scale(2)
    b = Transform.translate(1, 0, 0)
    p = np.array([[1.0, 0.0, 0.0]])
    np.testing.assert_allclose(a.then(b).apply_points(p), [[3, 0, 0]])


@given(angle, coord, coord, coord)
@settings(max_examples=60)
def test_inverse_roundtrip(theta, x, y, z):
    t = Transform.translate(x, y, z) @ Transform.rotate_y(theta) @ Transform.scale(1.5)
    p = np.array([[0.3, -0.7, 2.0]])
    np.testing.assert_allclose(t.inv_points(t.apply_points(p)), p, atol=1e-9)
    np.testing.assert_allclose(t.inverse().apply_points(t.apply_points(p)), p, atol=1e-9)


def test_normals_under_nonuniform_scale():
    """Normals must use the inverse-transpose: squashing a surface in y
    makes a y-facing normal *longer*-biased toward y, not shorter."""
    t = Transform.scale(1, 0.5, 1)
    # A 45-degree surface normal in the xy-plane.
    n = np.array([[1.0, 1.0, 0.0]]) / np.sqrt(2)
    tn = t.apply_normals(n)
    tn = tn / np.linalg.norm(tn)
    # Tangent (1, -1, 0) maps to (1, -0.5, 0); normal must stay orthogonal.
    tangent = t.apply_vectors(np.array([[1.0, -1.0, 0.0]]))
    assert abs(float(np.dot(tn[0], tangent[0]))) < 1e-12


def test_apply_aabb_rotation():
    box = AABB(vec3(-1, -1, -1), vec3(1, 1, 1))
    t = Transform.rotate_z(np.pi / 4)
    rotated = t.apply_aabb(box)
    s = np.sqrt(2)
    np.testing.assert_allclose(rotated.lo[:2], [-s, -s], atol=1e-12)
    np.testing.assert_allclose(rotated.hi[:2], [s, s], atol=1e-12)


def test_apply_aabb_infinite_returns_infinite():
    box = AABB(vec3(-np.inf, 0, -np.inf), vec3(np.inf, 1, np.inf))
    out = Transform.rotate_x(0.3).apply_aabb(box)
    assert np.all(np.isinf(out.lo)) and np.all(np.isinf(out.hi))


def test_bad_matrix_rejected():
    with pytest.raises(ValueError):
        Transform(np.eye(3))
