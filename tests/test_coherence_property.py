"""Property-based validation of the frame-coherence algorithm.

Hypothesis generates random little worlds — a mix of primitive types,
materials with reflection/transmission, one to two lights, and random
rigid motions on a random subset of objects — and the incremental renderer
must stay bit-exact and conservative on every one of them.  This is the
broadest net we can cast over the interaction of change detection, path
marking and the tracer.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence import validate_sequence
from repro.geometry import Box, Cylinder, Plane, Sphere
from repro.lighting import PointLight
from repro.materials import Finish, Material
from repro.rmath import Transform
from repro.scene import Camera, FunctionAnimation, Scene

W, H = 24, 18

finite_coord = st.floats(-2.5, 2.5, allow_nan=False)


@st.composite
def primitive(draw, index: int):
    kind = draw(st.sampled_from(["sphere", "box", "cylinder"]))
    cx = draw(finite_coord)
    cz = draw(st.floats(-1.5, 3.0))
    finish = Finish(
        ambient=0.1,
        diffuse=draw(st.floats(0.3, 0.9)),
        specular=draw(st.floats(0.0, 0.8)),
        reflection=draw(st.sampled_from([0.0, 0.0, 0.4])),
        transmission=draw(st.sampled_from([0.0, 0.0, 0.6])),
        ior=1.4,
    )
    mat = Material(
        pigment=Material.matte(
            (draw(st.floats(0.2, 1.0)), draw(st.floats(0.2, 1.0)), draw(st.floats(0.2, 1.0)))
        ).pigment,
        finish=finish,
    )
    name = f"obj{index}"
    if kind == "sphere":
        r = draw(st.floats(0.2, 0.8))
        return Sphere.at((cx, r + draw(st.floats(0.0, 1.5)), cz), r, material=mat, name=name)
    if kind == "box":
        s = draw(st.floats(0.3, 1.0))
        y0 = draw(st.floats(0.0, 1.0))
        return Box.from_corners((cx, y0, cz), (cx + s, y0 + s, cz + s), material=mat, name=name)
    r = draw(st.floats(0.1, 0.4))
    h = draw(st.floats(0.5, 1.5))
    return Cylinder.from_endpoints((cx, 0.0, cz), (cx, h, cz), r, material=mat, name=name)


@st.composite
def world(draw):
    n_objects = draw(st.integers(2, 4))
    objects = [
        Plane.from_normal((0, 1, 0), 0.0, material=Material.matte((0.8, 0.8, 0.8)), name="floor")
    ]
    for i in range(n_objects):
        objects.append(draw(primitive(i)))
    lights = [PointLight(np.array([3.0, 7.0, -4.0]), np.ones(3))]
    if draw(st.booleans()):
        lights.append(PointLight(np.array([-4.0, 5.0, -2.0]), np.full(3, 0.4)))
    cam = Camera(position=(0, 2.2, -6.5), look_at=(0, 0.8, 0), width=W, height=H)
    scene = Scene(
        camera=cam,
        objects=objects,
        lights=lights,
        background=np.array([0.1, 0.15, 0.3]),
        max_depth=4,
    )

    # Random rigid motions on a random non-empty subset of objects.
    n_movers = draw(st.integers(1, n_objects))
    motions = {}
    for i in range(n_movers):
        dx = draw(st.floats(-0.4, 0.4))
        dy = draw(st.floats(0.0, 0.3))
        rot = draw(st.floats(-0.3, 0.3))

        def motion(frame, dx=dx, dy=dy, rot=rot):
            return Transform.rotate_y(rot * frame) @ Transform.translate(
                dx * frame, dy * abs(np.sin(frame)), 0.0
            )

        motions[f"obj{i}"] = motion
    return FunctionAnimation(scene, n_frames=3, motions=motions)


@given(anim=world())
@settings(max_examples=25, deadline=None)
def test_random_worlds_stay_exact_and_conservative(anim):
    report = validate_sequence(anim, grid_resolution=12)
    assert report.all_exact, [f.max_error for f in report.frames]
    assert report.all_conservative, [f.missed_pixels.size for f in report.frames]


@given(anim=world())
@settings(max_examples=8, deadline=None)
def test_random_worlds_shadow_coherence_exact(anim):
    from repro.coherence import ShadowCoherentRenderer
    from repro.render import RayTracer

    renderer = ShadowCoherentRenderer(anim, grid_resolution=12)
    for f in range(anim.n_frames):
        renderer.render_next()
        full, _ = RayTracer(anim.scene_at(f)).render()
        np.testing.assert_array_equal(renderer.frame_image(), full.as_image())
