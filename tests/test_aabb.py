"""Tests for AABBs and the slab intersection test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rmath import AABB, ray_aabb_intersect, union, vec3

coord = st.floats(-50, 50, allow_nan=False, allow_infinity=False)


def box_strategy():
    return st.tuples(coord, coord, coord, coord, coord, coord).map(
        lambda t: AABB(
            np.minimum(t[:3], t[3:]),
            np.maximum(t[:3], t[3:]),
        )
    )


def test_empty_box_identity():
    e = AABB.empty()
    assert e.is_empty()
    b = AABB(vec3(0, 0, 0), vec3(1, 1, 1))
    assert not b.is_empty()
    u = union(e, b)
    np.testing.assert_array_equal(u.lo, b.lo)
    np.testing.assert_array_equal(u.hi, b.hi)


def test_from_points():
    pts = np.array([[0, 0, 0], [1, -1, 2], [0.5, 3, -4]], dtype=float)
    b = AABB.from_points(pts)
    np.testing.assert_array_equal(b.lo, [0, -1, -4])
    np.testing.assert_array_equal(b.hi, [1, 3, 2])


def test_from_points_empty():
    assert AABB.from_points(np.empty((0, 3))).is_empty()


def test_center_extent_volume_area():
    b = AABB(vec3(0, 0, 0), vec3(2, 4, 6))
    np.testing.assert_array_equal(b.center, [1, 2, 3])
    np.testing.assert_array_equal(b.extent, [2, 4, 6])
    assert b.volume == pytest.approx(48.0)
    assert b.surface_area == pytest.approx(2 * (8 + 24 + 12))


def test_contains_point_batched():
    b = AABB(vec3(0, 0, 0), vec3(1, 1, 1))
    pts = np.array([[0.5, 0.5, 0.5], [1.5, 0.5, 0.5], [1.0, 1.0, 1.0]])
    np.testing.assert_array_equal(b.contains_point(pts), [True, False, True])


def test_overlaps():
    a = AABB(vec3(0, 0, 0), vec3(1, 1, 1))
    b = AABB(vec3(0.5, 0.5, 0.5), vec3(2, 2, 2))
    c = AABB(vec3(2, 2, 2), vec3(3, 3, 3))
    assert a.overlaps(b)
    assert not a.overlaps(c)
    assert b.overlaps(c)  # touching at a corner counts
    assert not a.overlaps(AABB.empty())


def test_expanded():
    b = AABB(vec3(0, 0, 0), vec3(1, 1, 1)).expanded(0.5)
    np.testing.assert_array_equal(b.lo, [-0.5] * 3)
    np.testing.assert_array_equal(b.hi, [1.5] * 3)


def test_corners():
    b = AABB(vec3(0, 0, 0), vec3(1, 2, 3))
    c = b.corners()
    assert c.shape == (8, 3)
    assert {tuple(p) for p in c} == {
        (x, y, z) for x in (0.0, 1.0) for y in (0.0, 2.0) for z in (0.0, 3.0)
    }


def test_bad_shape_rejected():
    with pytest.raises(ValueError):
        AABB(np.zeros(2), np.zeros(3))


@given(box_strategy(), box_strategy())
@settings(max_examples=60)
def test_union_contains_both(a, b):
    u = union(a, b)
    assert np.all(u.lo <= a.lo) and np.all(u.hi >= a.hi)
    assert np.all(u.lo <= b.lo) and np.all(u.hi >= b.hi)


def _slab(origins, dirs, lo, hi, t_max=np.inf):
    with np.errstate(divide="ignore", over="ignore"):
        inv = 1.0 / dirs
    return ray_aabb_intersect(origins, inv, lo, hi, t_max)


def test_ray_hits_box_head_on():
    o = np.array([[0.0, 0.0, -5.0]])
    d = np.array([[0.0, 0.0, 1.0]])
    hit, t0, t1 = _slab(o, d, vec3(-1, -1, -1), vec3(1, 1, 1))
    assert hit[0]
    assert t0[0] == pytest.approx(4.0)
    assert t1[0] == pytest.approx(6.0)


def test_ray_misses_box():
    o = np.array([[0.0, 5.0, -5.0]])
    d = np.array([[0.0, 0.0, 1.0]])
    hit, _, _ = _slab(o, d, vec3(-1, -1, -1), vec3(1, 1, 1))
    assert not hit[0]


def test_ray_starting_inside():
    o = np.array([[0.0, 0.0, 0.0]])
    d = np.array([[1.0, 0.0, 0.0]])
    hit, t0, t1 = _slab(o, d, vec3(-1, -1, -1), vec3(1, 1, 1))
    assert hit[0]
    assert t0[0] == pytest.approx(0.0)
    assert t1[0] == pytest.approx(1.0)


def test_t_max_clips():
    o = np.array([[0.0, 0.0, -5.0]])
    d = np.array([[0.0, 0.0, 1.0]])
    hit, _, _ = _slab(o, d, vec3(-1, -1, -1), vec3(1, 1, 1), t_max=3.0)
    assert not hit[0]


def test_axis_parallel_ray_inside_slab():
    # Ray parallel to x-faces, inside the box's x-range: zero dir component.
    o = np.array([[0.5, 0.0, -5.0]])
    d = np.array([[0.0, 0.0, 1.0]])
    hit, _, _ = _slab(o, d, vec3(0, -1, -1), vec3(1, 1, 1))
    assert hit[0]
    # And outside the slab: must miss.
    o2 = np.array([[2.0, 0.0, -5.0]])
    hit2, _, _ = _slab(o2, d, vec3(0, -1, -1), vec3(1, 1, 1))
    assert not hit2[0]


@given(
    st.tuples(coord, coord, coord),
    st.tuples(coord, coord, coord).filter(lambda d: np.linalg.norm(d) > 1e-3),
    st.floats(0.05, 1.0),
)
@settings(max_examples=60)
def test_points_inside_interval_are_inside_box(origin, direction, s):
    """Any parametric point within [t_enter, t_exit] lies in the box."""
    lo, hi = vec3(-10, -10, -10), vec3(10, 10, 10)
    o = np.asarray(origin, dtype=float)[None]
    d = np.asarray(direction, dtype=float)[None]
    hit, t0, t1 = _slab(o, d, lo, hi)
    if hit[0] and np.isfinite(t0[0]) and np.isfinite(t1[0]):
        t = t0[0] + s * (t1[0] - t0[0])
        p = o[0] + t * d[0]
        assert np.all(p >= lo - 1e-6) and np.all(p <= hi + 1e-6)
