"""Tests for constructive solid geometry (convex operands)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    MISS,
    Box,
    CSGDifference,
    CSGIntersection,
    Cylinder,
    Plane,
    Sphere,
    convex_interval,
)
from repro.materials import Material
from repro.rmath import Transform, normalize


def _shoot(obj, origin, direction):
    o = np.asarray(origin, dtype=float)[None]
    d = normalize(np.asarray(direction, dtype=float))[None]
    t, n = obj.intersect(o, d)
    return float(t[0]), n[0]


# -- convex_interval ------------------------------------------------------------
def test_sphere_interval():
    s = Sphere.at((0, 0, 0), 1.0)
    t0, t1, v = convex_interval(s, np.array([[0.0, 0, -5]]), np.array([[0.0, 0, 1]]))
    assert v[0]
    assert t0[0] == pytest.approx(4.0) and t1[0] == pytest.approx(6.0)


def test_box_interval_ray_inside():
    b = Box.from_corners((-1, -1, -1), (1, 1, 1))
    t0, t1, v = convex_interval(b, np.array([[0.0, 0, 0]]), np.array([[1.0, 0, 0]]))
    assert v[0]
    assert t0[0] == pytest.approx(-1.0) and t1[0] == pytest.approx(1.0)


def test_box_interval_parallel_outside_misses():
    b = Box.from_corners((0, 0, 0), (1, 1, 1))
    t0, t1, v = convex_interval(b, np.array([[2.0, 0.5, -5]]), np.array([[0.0, 0, 1]]))
    assert not v[0]


def test_cylinder_interval_axis_parallel():
    c = Cylinder.from_endpoints((0, 0, 0), (0, 2, 0), 1.0)
    t0, t1, v = convex_interval(c, np.array([[0.0, -5, 0]]), np.array([[0.0, 1, 0]]))
    assert v[0]
    assert t0[0] == pytest.approx(5.0) and t1[0] == pytest.approx(7.0)


def test_unsupported_operand_rejected():
    p = Plane.from_normal((0, 1, 0), 0.0)
    with pytest.raises(TypeError):
        convex_interval(p, np.zeros((1, 3)), np.ones((1, 3)))
    with pytest.raises(TypeError):
        CSGIntersection([p, Sphere.at((0, 0, 0), 1.0)])


# -- intersection -------------------------------------------------------------------
def test_lens():
    lens = CSGIntersection([Sphere.at((0, 0, -0.6), 1.0), Sphere.at((0, 0, 0.6), 1.0)])
    t, n = _shoot(lens, (0, 0, -5), (0, 0, 1))
    assert t == pytest.approx(4.6)  # the +z sphere's front cap at z = -0.4
    np.testing.assert_allclose(n, [0, 0, -1], atol=1e-9)
    # Outside the lens but inside one sphere: miss.
    t2, _ = _shoot(lens, (0, 0.9, -5), (0, 0, 1))
    assert t2 == MISS


def test_intersection_from_inside():
    lens = CSGIntersection([Sphere.at((0, 0, -0.6), 1.0), Sphere.at((0, 0, 0.6), 1.0)])
    t, _ = _shoot(lens, (0, 0, 0), (0, 0, 1))
    assert t == pytest.approx(0.4)


def test_intersection_bounds():
    lens = CSGIntersection([Sphere.at((0, 0, -0.6), 1.0), Sphere.at((0, 0, 0.6), 1.0)])
    b = lens.bounds()
    np.testing.assert_allclose(b.lo[2], -0.4, atol=1e-12)
    np.testing.assert_allclose(b.hi[2], 0.4, atol=1e-12)


def test_disjoint_intersection_never_hits():
    empty = CSGIntersection([Sphere.at((0, 0, 0), 1.0), Sphere.at((5, 0, 0), 1.0)])
    t, _ = _shoot(empty, (0, 0, -5), (0, 0, 1))
    assert t == MISS


def test_intersection_needs_two_children():
    with pytest.raises(ValueError):
        CSGIntersection([Sphere.at((0, 0, 0), 1.0)])


def test_nested_intersection():
    inner = CSGIntersection(
        [Sphere.at((0, 0, 0), 1.0), Box.from_corners((-1, -1, -1), (1, 1, 0))]
    )
    outer = CSGIntersection([inner, Box.from_corners((-1, -1, -1), (0, 1, 1))])
    # Hits the sphere surface in the region x<0, z<0.
    t, _ = _shoot(outer, (-0.5, 0, -5), (0, 0, 1))
    assert np.isfinite(t)
    t2, _ = _shoot(outer, (0.5, 0, -5), (0, 0, 1))  # carved away by outer box
    assert t2 == MISS


# -- difference ------------------------------------------------------------------------
def test_difference_face_and_carve():
    die = CSGDifference(
        Box.from_corners((-1, -1, -1), (1, 1, 1)), Sphere.at((1, 1, 1), 0.8)
    )
    t, n = _shoot(die, (0, 0, -5), (0, 0, 1))
    assert t == pytest.approx(4.0)
    np.testing.assert_allclose(n, [0, 0, -1], atol=1e-9)
    # Diagonal ray into the carved corner hits the (flipped) sphere surface.
    t2, n2 = _shoot(die, (3, 3, 3), (-1, -1, -1))
    assert t2 == pytest.approx(2 * np.sqrt(3) + 0.8)
    np.testing.assert_allclose(n2, np.full(3, 1 / np.sqrt(3)), atol=1e-9)


def test_difference_pipe():
    pipe = CSGDifference(
        Cylinder.from_endpoints((0, 0, 0), (0, 2, 0), 1.0),
        Cylinder.from_endpoints((0, -0.1, 0), (0, 2.1, 0), 0.6),
    )
    t_out, _ = _shoot(pipe, (-5, 1, 0), (1, 0, 0))
    assert t_out == pytest.approx(4.0)
    t_in, n_in = _shoot(pipe, (0, 1, 0), (1, 0, 0))  # from inside the bore
    assert t_in == pytest.approx(0.6)
    np.testing.assert_allclose(n_in, [-1, 0, 0], atol=1e-9)


def test_difference_subtrahend_covers_all():
    gone = CSGDifference(Sphere.at((0, 0, 0), 1.0), Sphere.at((0, 0, 0), 2.0))
    t, _ = _shoot(gone, (0, 0, -5), (0, 0, 1))
    assert t == MISS


def test_difference_bounds():
    die = CSGDifference(
        Box.from_corners((0, 0, 0), (2, 2, 2)), Sphere.at((0, 0, 0), 0.5)
    )
    b = die.bounds()
    np.testing.assert_allclose(b.lo, [0, 0, 0])
    np.testing.assert_allclose(b.hi, [2, 2, 2])


@given(
    x=st.floats(-3, 3),
    y=st.floats(-3, 3),
    dz=st.floats(0.3, 1.0),
)
@settings(max_examples=60)
def test_difference_hits_lie_on_a_surface(x, y, dz):
    """Property: any reported hit point is on the minuend's or the
    subtrahend's surface, outside the open subtrahend, inside the closed
    minuend."""
    A = Sphere.at((0, 0, 0), 2.0)
    B = Box.from_corners((-1, -1, -1), (1, 1, 1))
    diff = CSGDifference(A, B)
    o = np.array([[x, y, -6.0]])
    d = normalize(np.array([[0.02, -0.03, dz]]))
    t, _ = diff.intersect(o, d)
    if np.isfinite(t[0]):
        p = (o + t[0] * d)[0]
        r = np.linalg.norm(p)
        on_sphere = abs(r - 2.0) < 1e-6
        on_box = np.max(np.abs(p)) <= 1.0 + 1e-6 and (
            min(abs(abs(p).max() - 1.0), abs(abs(p).min() - 1.0)) < 1e-6
            or np.any(np.abs(np.abs(p) - 1.0) < 1e-6)
        )
        assert on_sphere or on_box
        assert r <= 2.0 + 1e-6  # inside the minuend
        assert np.any(np.abs(p) >= 1.0 - 1e-6)  # not strictly inside the box


# -- rendering / shading integration --------------------------------------------------
def test_csg_renders_in_scene():
    from repro.lighting import PointLight
    from repro.render import RayTracer
    from repro.scene import Camera, Scene

    lens = CSGIntersection(
        [Sphere.at((0, 1, -0.4), 1.0), Sphere.at((0, 1, 0.4), 1.0)],
        material=Material.glass(),
        name="lens",
    )
    die = CSGDifference(
        Box.from_corners((1.2, 0, -0.5), (2.2, 1, 0.5)),
        Sphere.at((2.2, 1, 0), 0.5),
        material=Material.matte((0.9, 0.3, 0.2)),
        name="die",
    )
    floor = Plane.from_normal((0, 1, 0), 0.0, material=Material.matte((1, 1, 1)))
    cam = Camera(position=(0, 1.5, -5), look_at=(0.5, 0.8, 0), width=48, height=36)
    scene = Scene(
        camera=cam,
        objects=[floor, lens, die],
        lights=[PointLight(np.array([3.0, 6.0, -4.0]), np.ones(3))],
    )
    fb, res = RayTracer(scene).render()
    assert res.stats.refracted > 0  # through the lens
    img = fb.to_uint8()
    assert img.std() > 5


def test_csg_coherence_exact():
    """A moving CSG object keeps the incremental renderer exact."""
    from repro.coherence import validate_sequence
    from repro.lighting import PointLight
    from repro.render import RayTracer
    from repro.scene import Camera, FunctionAnimation, Scene

    die = CSGDifference(
        Box.from_corners((-0.5, 0, -0.5), (0.5, 1, 0.5)),
        Sphere.at((0.5, 1, 0.5), 0.4),
        material=Material.matte((0.2, 0.6, 0.9)),
        name="die",
    )
    floor = Plane.from_normal((0, 1, 0), 0.0, material=Material.matte((1, 1, 1)))
    cam = Camera(position=(0, 1.5, -4), look_at=(0, 0.5, 0), width=40, height=30)
    scene = Scene(
        camera=cam,
        objects=[floor, die],
        lights=[PointLight(np.array([3.0, 5.0, -3.0]), np.ones(3))],
    )
    anim = FunctionAnimation(
        scene, 3, motions={"die": lambda f: Transform.translate(0.25 * f, 0, 0)}
    )
    rep = validate_sequence(anim, grid_resolution=16)
    assert rep.all_exact and rep.all_conservative


# -- SDL ---------------------------------------------------------------------------------
def test_sdl_intersection_and_difference():
    from repro.scene import parse_scene

    s = parse_scene(
        """
        camera { location <0,1,-5> look_at <0,1,0> width 16 height 12 }
        intersection {
            sphere { <0, 1, -0.4>, 1 }
            sphere { <0, 1, 0.4>, 1 }
            name "lens"
        }
        difference {
            box { <1, 0, -0.5>, <2, 1, 0.5> }
            sphere { <2, 1, 0>, 0.5 }
            texture { pigment { rgb <1, 0, 0> } }
            name "die"
        }
        """
    )
    names = [o.name for o in s.objects]
    assert names == ["lens", "die"]
    assert isinstance(s.objects[0], CSGIntersection)
    assert isinstance(s.objects[1], CSGDifference)
    np.testing.assert_allclose(
        s.objects[1].material.color_at(np.zeros((1, 3)))[0], [1, 0, 0]
    )
