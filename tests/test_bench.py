"""Tests for the Table-1 regeneration harness."""

import pytest

from repro.bench import (
    PAPER_TABLE1,
    Table1Settings,
    cached_oracle,
    format_table1,
    run_table1,
)
from repro.runtime import AnimationSpec


def test_paper_constants_sane():
    assert PAPER_TABLE1["single_total_s"] == 10551
    assert PAPER_TABLE1["fc_ray_reduction"] == 5.0
    assert PAPER_TABLE1["frame_div_speedup"] > PAPER_TABLE1["seq_div_speedup"]


def test_run_table1_on_tiny_oracle(tiny_oracle):
    result = run_table1(tiny_oracle)
    # Calibration: column (1) hits the paper's total by construction.
    assert result.single.total_time == pytest.approx(
        PAPER_TABLE1["single_total_s"], rel=1e-6
    )
    # Orderings that must hold at any scale:
    assert result.single_fc.total_time < result.single.total_time
    assert result.frame_div_fc.total_time < result.single_fc.total_time
    assert result.fc_ray_reduction > 1.0
    assert result.sec_per_work_unit > 0


def test_run_table1_uncalibrated(tiny_oracle):
    settings = Table1Settings(calibrate_total_s=None, sec_per_work_unit=1e-3)
    result = run_table1(tiny_oracle, settings)
    assert result.sec_per_work_unit == 1e-3


def test_format_table1_layout(tiny_oracle):
    result = run_table1(tiny_oracle)
    text = format_table1(result)
    for token in (
        "(1) single",
        "(2) single+FC",
        "(4) distributed",
        "(6) seq div+FC",
        "(8) frame div+FC",
        "# rays",
        "first frame",
        "average frame",
        "total time",
        "speedup vs (1)",
        "ray reduction",
    ):
        assert token in text
    assert "2:55:51" in text  # the calibrated column (1) total


def test_cached_oracle_roundtrip(tmp_path):
    spec = AnimationSpec.newton(n_frames=2, width=24, height=18)
    a = cached_oracle(spec, grid_resolution=8, cache_dir=tmp_path)
    assert len(list(tmp_path.glob("oracle_*.npz"))) == 1
    b = cached_oracle(spec, grid_resolution=8, cache_dir=tmp_path)
    assert (a.full_cost == b.full_cost).all()
    # Different parameters get a different cache entry.
    cached_oracle(spec, grid_resolution=12, cache_dir=tmp_path)
    assert len(list(tmp_path.glob("oracle_*.npz"))) == 2


def test_cached_oracle_corrupt_entry_rebuilt(tmp_path):
    spec = AnimationSpec.newton(n_frames=2, width=24, height=18)
    cached_oracle(spec, grid_resolution=8, cache_dir=tmp_path)
    entry = next(tmp_path.glob("oracle_*.npz"))
    entry.write_bytes(b"garbage")
    again = cached_oracle(spec, grid_resolution=8, cache_dir=tmp_path)
    assert again.n_frames == 2
