"""Tests for the voxel -> pixel-list map, including a model-based property
test against a dict-of-sets reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence import VoxelPixelMap

N_VOX, N_PIX = 20, 50


def test_empty_map_queries():
    m = VoxelPixelMap(N_VOX, N_PIX)
    assert m.n_entries == 0
    assert m.pixels_for_voxels(np.array([0, 1])).size == 0
    assert m.voxels_of_pixel(0).size == 0


def test_add_and_query():
    m = VoxelPixelMap(N_VOX, N_PIX)
    m.add_marks(np.array([3, 3, 7]), np.array([10, 11, 10]))
    np.testing.assert_array_equal(m.pixels_for_voxels(np.array([3])), [10, 11])
    np.testing.assert_array_equal(m.pixels_for_voxels(np.array([7])), [10])
    np.testing.assert_array_equal(m.pixels_for_voxels(np.array([3, 7])), [10, 11])
    np.testing.assert_array_equal(m.voxels_of_pixel(10), [3, 7])


def test_duplicates_coalesced():
    m = VoxelPixelMap(N_VOX, N_PIX)
    m.add_marks(np.array([1, 1, 1]), np.array([2, 2, 2]))
    assert m.n_entries == 1
    m.add_marks(np.array([1]), np.array([2]))
    assert m.n_entries == 1


def test_remove_pixels():
    m = VoxelPixelMap(N_VOX, N_PIX)
    m.add_marks(np.array([0, 1, 2]), np.array([5, 5, 6]))
    m.remove_pixels(np.array([5]))
    assert m.n_entries == 1
    np.testing.assert_array_equal(m.pixels_for_voxels(np.array([2])), [6])
    assert m.pixels_for_voxels(np.array([0, 1])).size == 0


def test_replace_pixel_marks():
    m = VoxelPixelMap(N_VOX, N_PIX)
    m.add_marks(np.array([0, 1]), np.array([5, 5]))
    m.replace_pixel_marks(np.array([5]), np.array([9]), np.array([5]))
    np.testing.assert_array_equal(m.voxels_of_pixel(5), [9])


def test_out_of_range_rejected():
    m = VoxelPixelMap(N_VOX, N_PIX)
    with pytest.raises(IndexError):
        m.add_marks(np.array([N_VOX]), np.array([0]))
    with pytest.raises(IndexError):
        m.add_marks(np.array([0]), np.array([N_PIX]))
    with pytest.raises(IndexError):
        m.add_marks(np.array([-1]), np.array([0]))


def test_copy_is_independent():
    m = VoxelPixelMap(N_VOX, N_PIX)
    m.add_marks(np.array([0]), np.array([0]))
    c = m.copy()
    c.add_marks(np.array([1]), np.array([1]))
    assert m.n_entries == 1 and c.n_entries == 2


def test_memory_bytes_grows():
    m = VoxelPixelMap(N_VOX, N_PIX)
    before = m.memory_bytes()
    m.add_marks(np.arange(10), np.arange(10))
    assert m.memory_bytes() > before


def test_validation():
    with pytest.raises(ValueError):
        VoxelPixelMap(0, 10)


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.lists(
                st.tuples(st.integers(0, N_VOX - 1), st.integers(0, N_PIX - 1)),
                max_size=20,
            ),
        ),
        st.tuples(st.just("remove"), st.lists(st.integers(0, N_PIX - 1), max_size=10)),
    ),
    max_size=12,
)


@given(ops=ops, query=st.lists(st.integers(0, N_VOX - 1), max_size=8))
@settings(max_examples=80, deadline=None)
def test_matches_dict_of_sets_model(ops, query):
    """Model-based: the CSR-ish map behaves like a dict voxel -> set(pixel)."""
    m = VoxelPixelMap(N_VOX, N_PIX)
    model: dict[int, set[int]] = {}
    for op, payload in ops:
        if op == "add":
            if payload:
                v = np.array([p[0] for p in payload])
                p = np.array([p[1] for p in payload])
                m.add_marks(v, p)
                for vi, pi in payload:
                    model.setdefault(vi, set()).add(pi)
        else:
            m.remove_pixels(np.array(payload, dtype=np.int64))
            for s in model.values():
                s.difference_update(payload)
    expected = sorted(set().union(*(model.get(v, set()) for v in query)) if query else set())
    got = m.pixels_for_voxels(np.array(query, dtype=np.int64)).tolist()
    assert got == expected
    assert m.n_entries == sum(len(s) for s in model.values())
