"""repro.buffers: the zero-copy data plane's ownership layer.

Covers the three pieces and their contract (DESIGN §15): the recycled
BufferPool the compositor draws from, the SharedFrameStore/FrameRef
shared-memory transport (only the address pickles; the master attaches
read-only and releases), and the copystats ledger the zero-copy
benchmark gates on.  LazyFrames lifetime tests live here too — they are
the API-level proof that released pixel stacks actually go back to the
pool.
"""

import pickle

import numpy as np
import pytest

from repro.api import LazyFrames
from repro.buffers import (
    BufferPool,
    CopyStats,
    FrameRef,
    SharedFrameStore,
    activate_worker_store,
    attach_refs,
    release_refs,
    worker_store,
)
from repro.dfb import FrameBuffer


# -- copy accounting ---------------------------------------------------------------
def test_copystats_ledger():
    stats = CopyStats()
    stats.add(100, "encode.tobytes")
    stats.add(50, "encode.tobytes")
    stats.add(25, "decode.copy")
    stats.add(0, "decode.copy")  # zero-byte "copies" stay off the books
    stats.add(-5, "decode.copy")
    assert stats.total() == 175
    assert stats.snapshot() == {"encode.tobytes": 150, "decode.copy": 25}
    stats.reset()
    assert stats.total() == 0 and stats.snapshot() == {}


# -- pooled buffers ----------------------------------------------------------------
def test_pool_miss_then_hit_recycles_same_storage():
    pool = BufferPool()
    a = pool.acquire((3, 4), np.float64)
    assert pool.stats()["n_misses"] == 1
    a[:] = 7.0
    assert pool.release(a)
    b = pool.acquire((3, 4), np.float64)
    assert b is a  # recycled, not reallocated
    assert pool.stats()["n_hits"] == 1
    c = pool.acquire((3, 4), np.float64, zero=True)  # different storage, blanked
    assert c is not a and not c.any()


def test_pool_refuses_unpoolable_arrays():
    pool = BufferPool()
    ro = np.zeros((2, 2))
    ro.setflags(write=False)
    assert not pool.release(ro)  # read-only views must never be recycled
    assert not pool.release(np.zeros((4, 4))[::2])  # non-contiguous
    assert not pool.release("not an array")
    # refusals still count as released for outstanding bookkeeping
    assert pool.stats()["n_released"] == 3
    assert pool.stats()["bytes_pooled"] == 0


def test_pool_caps_parked_bytes():
    pool = BufferPool(max_bytes=100)
    small = pool.acquire((10,), np.float64)  # 80 bytes
    big = pool.acquire((100,), np.float64)  # 800 bytes
    assert pool.release(small)
    assert not pool.release(big)  # over cap: dropped to the allocator
    assert pool.stats()["bytes_pooled"] == 80
    pool.clear()
    assert pool.stats()["bytes_pooled"] == 0


def test_framebuffer_composite_plane_is_pooled():
    pool = BufferPool()
    fb = FrameBuffer(4, 5, pool=pool)
    plane = fb.image
    fb.image[:] = 3.0
    fb.release()
    fb2 = FrameBuffer(4, 5, pool=pool)
    assert fb2.image is plane  # the released plane came back around
    assert not fb2.image.any()  # ...blanked for the new frame


# -- shared-memory frames ----------------------------------------------------------
def test_frameref_pickles_address_only_and_resolves_read_only():
    store = SharedFrameStore()
    try:
        ref, view = store.create((2, 3, 3), np.float64)
        view[:] = np.arange(18, dtype=np.float64).reshape(2, 3, 3)
        wire = pickle.dumps(ref)
        # Only the address travels — never the pixels.
        assert len(wire) < ref.nbytes
        got = pickle.loads(wire)
        out = np.asarray(got)
        assert out.tobytes() == view.tobytes()
        assert not out.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            out[0, 0, 0] = 1.0
        got.release()
        got.release()  # idempotent
        with pytest.raises(ValueError, match="after release"):
            got.resolve()
        ref.close_local()
    finally:
        store.cleanup()


def test_store_cleanup_sweeps_stray_segments():
    store = SharedFrameStore()
    ref, view = store.create((4, 4), np.float64)
    del view
    ref.close_local()  # worker died without the ref coming home
    assert store.cleanup() >= 1
    assert store.cleanup() == 0  # nothing left
    ref.release()  # releasing after the sweep must stay quiet


def test_attach_and_release_walk_nested_results():
    store = SharedFrameStore()
    try:
        ref, view = store.create((2, 2), np.float64)
        view[:] = 5.0
        ref.close_local()
        result = ("box", 0, 4, ref, {"meta": True})
        attach_refs(result)
        # Attached before the sweep: the unlink cannot strand the pixels.
        store.cleanup()
        assert np.asarray(ref)[0, 0] == 5.0
        assert release_refs([result]) == 1
        assert ref.released
    finally:
        store.cleanup()


def test_worker_store_activation_round_trip():
    assert worker_store() is None
    activate_worker_store("feedface0001")
    try:
        assert worker_store() is not None
        assert worker_store().token == "feedface0001"
    finally:
        activate_worker_store(None)
    assert worker_store() is None


# -- LazyFrames lifetime -----------------------------------------------------------
def test_lazyframes_release_returns_stack_to_pool():
    pool = BufferPool()
    arr = pool.acquire((2, 4, 4, 3), np.float64)
    arr[:] = 1.5
    lf = LazyFrames(arr, releaser=lambda: pool.release(arr))
    assert np.asarray(lf)[0, 0, 0, 0] == 1.5  # reads don't release
    assert pool.stats()["n_outstanding"] == 1
    lf.release()
    stats = pool.stats()
    assert stats["n_outstanding"] == 0 and stats["bytes_pooled"] == arr.nbytes
    assert pool.acquire((2, 4, 4, 3), np.float64) is arr  # recycled
    with pytest.raises(RuntimeError, match="released"):
        lf.materialize()
    lf.release()  # idempotent: the releaser fired exactly once
    assert pool.stats()["n_released"] == 1


def test_lazyframes_thunk_source_releases_refs_after_access():
    store = SharedFrameStore()
    try:
        ref, view = store.create((2, 3, 3), np.float64)
        view[:] = 7.0
        ref.close_local()
        lf = LazyFrames(lambda: np.array(ref), releaser=ref.release)
        assert not ref.released  # lazy: nothing touched yet
        out = np.asarray(lf)
        # First materialization released the shared-memory ref...
        assert ref.released
        # ...and the frames survive because LazyFrames owns its own stack.
        assert out[0, 0, 0] == 7.0
        assert np.asarray(lf)[1, 2, 2] == 7.0  # still readable after release
    finally:
        store.cleanup()
