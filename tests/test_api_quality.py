"""Meta-tests on the public API surface: documentation and exports."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.rmath",
    "repro.geometry",
    "repro.materials",
    "repro.lighting",
    "repro.scene",
    "repro.accel",
    "repro.render",
    "repro.coherence",
    "repro.cluster",
    "repro.parallel",
    "repro.runtime",
    "repro.imageio",
    "repro.scenes",
    "repro.bench",
    "repro.pipeline",
    "repro.cli",
]


@pytest.mark.parametrize("modname", SUBPACKAGES)
def test_module_has_docstring(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__ and mod.__doc__.strip(), f"{modname} lacks a module docstring"


@pytest.mark.parametrize("modname", SUBPACKAGES)
def test_all_exports_resolve_and_are_documented(modname):
    mod = importlib.import_module(modname)
    exported = getattr(mod, "__all__", [])
    for name in exported:
        assert hasattr(mod, name), f"{modname}.__all__ lists missing name {name!r}"
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert (
                obj.__doc__ and obj.__doc__.strip()
            ), f"{modname}.{name} is public but undocumented"


def test_every_source_module_has_docstring():
    undocumented = []
    for mod_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if mod_info.name == "repro.__main__":  # importing it runs the CLI
            continue
        mod = importlib.import_module(mod_info.name)
        if not (mod.__doc__ and mod.__doc__.strip()):
            undocumented.append(mod_info.name)
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_public_classes_have_documented_public_methods():
    """Spot-check the flagship classes' public methods."""
    from repro.coherence import CoherentRenderer, VoxelPixelMap
    from repro.cluster import VirtualPVM
    from repro.render import RayTracer

    for cls in (CoherentRenderer, VoxelPixelMap, VirtualPVM, RayTracer):
        for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
            if name.startswith("_"):
                continue
            assert member.__doc__, f"{cls.__name__}.{name} is undocumented"


def test_version_string():
    assert repro.__version__ == "1.0.0"
