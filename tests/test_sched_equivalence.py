"""One scheduler, three transports: the policy/transport equivalence tests.

The tentpole property of :mod:`repro.sched`: a Table-1 policy is a pure
state machine, so driving the *same* policy through the discrete-event
simulator (:class:`SimTransport`), the supervised process farm
(:class:`ProcessTransport`), and the loopback TCP network farm
(:class:`~repro.net.TcpTransport`) must produce identical
task-assignment sequences and identical modelled ray totals.  Plus the
scheduler edge cases — single worker, more workers than units,
zero-dirty FC frames, a worker lost mid-chain, a gating policy that
leaves lanes idle — exercised against the real transports.
"""

import numpy as np
import pytest

from repro.cluster import ThrashModel, ncsu_testbed
from repro.parallel.config import RenderFarmConfig
from repro.parallel.oracle import AnimationCostOracle
from repro.parallel.partition import sequence_ranges
from repro.parallel.fault_tolerance import default_worker_timeout
from repro.parallel.strategies import default_blocks
from repro.runtime import AnimationSpec, LocalRenderFarm
from repro.runtime.faults import FaultPlan
from repro.sched import (
    DemandDrivenPolicy,
    OracleCostModel,
    ProcessTransport,
    SchedulingPolicy,
    SimTransport,
    assignment_echo_task,
    make_policy,
)

SPU = 1e-4
NO_THRASH = ThrashModel(alpha=0.0)


@pytest.fixture(scope="module")
def machines():
    return ncsu_testbed()


@pytest.fixture(scope="module")
def cfg():
    return RenderFarmConfig()


def _run_sim(policy, oracle, regions, machines, label, single=False, **kw):
    transport = SimTransport(
        policy,
        oracle,
        machines,
        RenderFarmConfig(),
        regions=regions,
        label=label,
        sec_per_work_unit=SPU,
        thrash=NO_THRASH,
        single=single,
        **kw,
    )
    return transport.run()


def _run_process(policy, n_workers, **kw):
    transport = ProcessTransport(
        policy,
        assignment_echo_task,
        lambda a, lane: (a.seq, lane),
        n_workers=n_workers,
        executor="serial",
        **kw,
    )
    return transport.run()


def _run_tcp(policy, n_workers, **kw):
    """Drive a policy through the loopback network farm with the echo task
    (real sockets, real worker daemons; only the dispatch log matters)."""
    from repro.net import TcpTransport

    transport = TcpTransport(
        policy,
        "echo",
        lambda a, lane: (a.seq, lane),
        n_workers=n_workers,
        startup_timeout=120.0,
        **kw,
    )
    return transport.run()


def _build(strategy, oracle, n_workers):
    """(policy, regions) for one Table-1 strategy over the oracle's geometry."""
    n = oracle.n_frames
    if strategy in ("single", "single-fc"):
        return make_policy(strategy, n), None
    if strategy in ("sequence-division-fc", "sequence-division-nofc"):
        ranges = sequence_ranges(n, max(2, n_workers))
        return make_policy(strategy, n, sequence_ranges=ranges), None
    regions = default_blocks(oracle)
    return (
        make_policy(strategy, n, n_regions=len(regions), frames_per_chunk=2),
        regions,
    )


# -- the acceptance property -----------------------------------------------------
FIVE_STRATEGIES = (
    "single-fc",
    "frame-division-nofc",
    "sequence-division-fc",
    "frame-division-fc",
    "hybrid-fc",
)


@pytest.mark.parametrize("strategy", FIVE_STRATEGIES)
def test_transports_produce_identical_assignment_sequences(
    strategy, tiny_oracle, machines, cfg
):
    """Same policy, all three transports: identical dispatch logs and ray
    totals.

    Demand-driven distribution is queue-ordered, so any worker count gives
    the same sequence; the chained policies are driven by one worker, where
    the dispatch order is completion-order independent.
    """
    n_workers = 3 if strategy == "frame-division-nofc" else 1
    p_sim, regions = _build(strategy, tiny_oracle, n_workers)
    p_proc, _ = _build(strategy, tiny_oracle, n_workers)
    p_tcp, _ = _build(strategy, tiny_oracle, n_workers)

    sim_out = _run_sim(
        p_sim,
        tiny_oracle,
        regions,
        machines[:n_workers],
        strategy,
        single=(strategy == "single-fc"),
    )
    proc_out = _run_process(p_proc, n_workers)
    tcp_out = _run_tcp(p_tcp, n_workers)

    assert p_sim.finished and p_proc.finished and p_tcp.finished
    assert [a.key() for a in p_sim.log] == [a.key() for a in p_proc.log]
    assert [a.key() for a in p_sim.log] == [a.key() for a in p_tcp.log]

    cost = OracleCostModel(tiny_oracle, cfg, regions)
    rays = cost.total_rays_of_log(p_sim.log)
    assert rays == cost.total_rays_of_log(p_proc.log)
    assert rays == cost.total_rays_of_log(p_tcp.log)
    # and the simulator's payload accounting agrees with the cost model
    assert sim_out.total_rays == rays
    assert len(proc_out.assignments) == len(p_proc.log)
    assert len(tcp_out.assignments) == len(p_tcp.log)
    assert tcp_out.net is not None and tcp_out.net.n_results == len(p_tcp.log)


def test_multiworker_chains_cover_every_frame_once(tiny_oracle, machines):
    """With several workers the interleaving (and steal points) may differ
    between transports, but each dispatches every frame exactly once."""
    n = tiny_oracle.n_frames
    for run in ("sim", "process"):
        policy = make_policy(
            "sequence-division-fc", n, sequence_ranges=sequence_ranges(n, 3)
        )
        if run == "sim":
            _run_sim(policy, tiny_oracle, None, machines[:3], "seq-fc")
        else:
            _run_process(policy, 3)
        assert policy.finished
        dispatched = sorted(f for a in policy.log for f in range(a.frame0, a.frame1))
        assert dispatched == list(range(n))


def test_object_space_equivalent_across_sim_and_tcp(tiny_oracle, machines, cfg):
    """The object-space policy is the same state machine under the
    discrete-event simulator (priced by :class:`ShardOracle`) and the real
    TCP ray-trading session: identical dispatch logs, identical modelled
    ray-exchange totals — and the TCP side actually rendered the frames
    bit-identically to the serial tracer."""
    from repro.render import RayTracer
    from repro.shard import ShardOracle, ShardProfile, render_frame_sharded
    from repro.shard.net import render_sharded_tcp

    spec = AnimationSpec.newton(n_frames=2, width=24, height=18)
    anim = spec.build()
    k = 3
    per_frame = []
    for f in range(2):
        scene = anim.scene_at(f)
        _, result, stats = render_frame_sharded(scene, shards=k)
        per_frame.append((stats, int(result.rays_per_pixel.sum())))
    profile = ShardProfile.from_stats(per_frame, anim.scene_at(0).camera.n_pixels)
    shard_oracle = ShardOracle(profile, n_shards=k, cfg=cfg)

    p_sim = make_policy("object-space", 2, n_regions=k)
    sim_out = _run_sim(
        p_sim, tiny_oracle, None, machines[:2], "object-space", cost_model=shard_oracle
    )

    session, tcp_out = render_sharded_tcp(spec, frames=2, shards=k, n_workers=2)

    assert p_sim.finished
    assert [a.key() for a in p_sim.log] == [a.key() for a in tcp_out.assignments]
    rays = shard_oracle.total_rays_of_log(p_sim.log)
    assert rays == shard_oracle.total_rays_of_log(tcp_out.assignments)
    assert rays > 0 and shard_oracle.ray_bytes_of_log(p_sim.log) > 0
    assert sim_out.total_rays == rays
    fb, _ = RayTracer(anim.scene_at(0)).render()
    assert np.array_equal(fb.data, session.frames[0].data)


# -- edge cases, against both transports ------------------------------------------
@pytest.fixture(params=["sim", "process"])
def run_policy(request, machines):
    """Drive a policy to completion on the transport named by the param."""

    def run(policy, oracle, regions=None, n_workers=2, **kw):
        if request.param == "sim":
            return _run_sim(
                policy, oracle, regions, machines[:n_workers], "edge", **kw
            )
        return _run_process(policy, n_workers, **kw)

    run.transport = request.param
    return run


def test_single_worker_drains_every_chain(run_policy, tiny_oracle):
    n = tiny_oracle.n_frames
    policy = make_policy(
        "sequence-division-fc", n, sequence_ranges=sequence_ranges(n, 3)
    )
    run_policy(policy, tiny_oracle, n_workers=1)
    assert policy.finished
    assert policy.n_steals == 0  # nobody to steal from
    assert sum(a.fresh for a in policy.log) == 3  # one fresh start per chain


def test_more_workers_than_units(run_policy, tiny_oracle):
    units = [(ri, 0, 1) for ri in range(2)]
    policy = DemandDrivenPolicy(units, use_coherence=False, units_per_frame=2)
    run_policy(policy, tiny_oracle, n_workers=3)
    assert policy.finished
    assert len(policy.log) == 2  # the surplus worker never gets an assignment


def _static_oracle(n_frames=4, width=4, height=3):
    """A perfectly static animation: every frame past the first has an
    empty recompute set, so coherent steps cost zero rays."""
    n_px = width * height
    full = np.full((n_frames, n_px), 2, dtype=np.int32)
    dirty = [np.array([], dtype=np.int64) for _ in range(n_frames)]
    return AnimationCostOracle(width, height, n_frames, full, dirty, grid_resolution=4)


def test_zero_dirty_frames_still_complete(run_policy, cfg):
    oracle = _static_oracle()
    n = oracle.n_frames
    policy = make_policy("sequence-division-fc", n, sequence_ranges=[(0, n)])
    run_policy(policy, oracle, n_workers=1)
    assert policy.finished
    cost = OracleCostModel(oracle, cfg)
    assert cost.total_rays_of_log(policy.log) == oracle.full_rays(0)
    assert all(cost.assignment_cost(a).rays == 0 for a in policy.log[1:])


def test_worker_lost_mid_chain_sim(tiny_oracle, machines):
    """Simulator transport: a failed machine trips the deadline sweep and
    the policy requeues its chain fresh on the survivors."""
    n = tiny_oracle.n_frames
    policy = make_policy(
        "sequence-division-fc", n, sequence_ranges=sequence_ranges(n, 2)
    )
    timeout = default_worker_timeout(
        tiny_oracle, machines[:2], RenderFarmConfig(), SPU, NO_THRASH
    )
    out = _run_sim(
        policy,
        tiny_oracle,
        None,
        machines[:2],
        "lost",
        worker_timeout=timeout,
        # machines[0] also hosts the master task; fail the other machine
        failures=[(machines[1].name, 0.01)],
    )
    assert policy.finished
    assert policy.n_reassigned >= 1
    assert len(out.frame_completion_times) == n


def test_worker_fault_mid_chain_process(tiny_oracle):
    """Process transport: a faulting attempt is retried on the same lane,
    so chain affinity survives and nothing is reassigned."""
    n = tiny_oracle.n_frames
    policy = make_policy(
        "sequence-division-fc", n, sequence_ranges=sequence_ranges(n, 2)
    )
    plan = FaultPlan([FaultPlan.raising(1, attempts=(0,))])
    out = _run_process(policy, 2, fault_plan=plan, max_attempts=3, backoff_base=0.0)
    assert policy.finished
    assert out.supervisor.n_retries >= 1
    assert policy.n_reassigned == 0


# -- idle-lane starvation / stall guards (shared by process and tcp) --------------
class GatedPolicy(SchedulingPolicy):
    """Releases one unit at a time: unit k+1 only after unit k's result.

    With several lanes, all but one idle-decline for the whole run — a
    transport must keep re-asking idle lanes after each completion (no
    starvation) while never misreading those declines as a stall, because
    work *is* in flight elsewhere.
    """

    def __init__(self, n_units: int) -> None:
        super().__init__()
        self.total_units = n_units
        self._n = n_units
        self._next = 0
        self._gate_open = True

    def next_assignment(self, worker):
        if not self._gate_open or self._next >= self._n:
            return None
        self._gate_open = False
        a = self._emit(worker, self._next, 0, 1, fresh=True)
        self._next += 1
        return a

    def on_result(self, worker, assignment) -> None:
        super().on_result(worker, assignment)
        self._gate_open = True

    def on_worker_lost(self, worker):
        a = self._inflight.pop(worker, None)
        if a is not None:
            self._next = a.region_index
            self._gate_open = True
        return a


class StuckPolicy(SchedulingPolicy):
    """Claims a unit remains but never dispatches anything: a buggy policy
    the transports must turn into a loud error, not an idle-forever hang."""

    def __init__(self) -> None:
        super().__init__()
        self.total_units = 1

    def next_assignment(self, worker):
        return None

    def on_worker_lost(self, worker):
        return None


@pytest.mark.parametrize("run", [_run_process, _run_tcp], ids=["process", "tcp"])
def test_idle_lanes_while_policy_gates_do_not_deadlock(run):
    policy = GatedPolicy(5)
    out = run(policy, 3)
    assert policy.finished
    assert len(out.results) == 5
    assert len(policy.log) == 5


@pytest.mark.parametrize("run", [_run_process, _run_tcp], ids=["process", "tcp"])
def test_stalled_policy_raises_instead_of_hanging(run):
    # The process transport reports the exhausted-but-incomplete policy when
    # its feed dries up; the tcp master flags the stall directly.  Either
    # way: a loud RuntimeError, never a silent hang.
    with pytest.raises(RuntimeError, match="stall|incomplete"):
        run(StuckPolicy(), 2)


# -- the real farm under dynamic schedules ----------------------------------------
def test_farm_dynamic_schedules_bit_identical():
    spec = AnimationSpec.newton(n_frames=3, width=24, height=18)
    ref = LocalRenderFarm(spec, executor="serial", grid_resolution=12).render_reference()
    for schedule in ("demand", "adaptive"):
        farm = LocalRenderFarm(
            spec, n_workers=2, executor="serial", schedule=schedule, grid_resolution=12
        )
        out = farm.render()
        assert out.mode == schedule
        assert np.array_equal(out.frames, ref.frames)


def test_dynamic_schedule_rejects_spooling(tmp_path):
    spec = AnimationSpec.newton(n_frames=2, width=16, height=12)
    farm = LocalRenderFarm(spec, executor="serial", schedule="demand")
    with pytest.raises(ValueError, match="static"):
        farm.render(run_dir=tmp_path)
