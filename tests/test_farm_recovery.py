"""Recovery tests for the supervised real render farm.

The acceptance scenario of the fault-tolerant runtime: workers crash and
hang mid-render, blocks come back corrupted, and the assembled animation
must still be *exactly* the fault-free reference — with the recovery
events on the record.  Also covers checkpoint spooling and resume.
"""

import json

import numpy as np
import pytest

from repro.runtime import (
    AnimationSpec,
    FaultPlan,
    LocalRenderFarm,
    SupervisorError,
)

GRID = 12


@pytest.fixture(scope="module")
def spec():
    return AnimationSpec.newton(n_frames=3, width=48, height=36)


@pytest.fixture(scope="module")
def reference(spec):
    farm = LocalRenderFarm(spec, mode="frame", executor="serial", grid_resolution=GRID)
    return farm.render_reference()


def _farm(spec, **kw):
    kw.setdefault("mode", "frame")
    kw.setdefault("executor", "process")
    kw.setdefault("grid_resolution", GRID)
    return LocalRenderFarm(spec, **kw)


# -- the headline scenario -------------------------------------------------------
def test_crashes_and_hang_still_bit_identical(spec, reference):
    """Two of four workers crash mid-run and a third task hangs; the render
    completes and equals the fault-free serial reference exactly."""
    plan = FaultPlan(
        (
            FaultPlan.crash(1),
            FaultPlan.crash(5),
            FaultPlan.hang(3, attempts=(0, 1), hang_seconds=60.0),
        )
    )
    farm = _farm(spec, n_workers=4, fault_plan=plan, task_timeout=4.0)
    res = farm.render()
    assert np.array_equal(res.frames, reference.frames)
    assert res.n_retries > 0
    assert res.n_crashes >= 1


def test_corrupted_block_never_reaches_assembly(spec, reference):
    plan = FaultPlan((FaultPlan.corrupting(7),))
    res = _farm(spec, n_workers=4, fault_plan=plan).render()
    assert np.array_equal(res.frames, reference.frames)
    assert res.n_invalid >= 1
    assert res.n_retries >= 1


def test_false_positive_deadline_slow_worker(spec, reference):
    """A slow-but-alive worker finishes after being declared dead; its
    duplicate completion is ignored and the frames are still exact."""
    plan = FaultPlan((FaultPlan.hang(2, hang_seconds=1.2),))
    res = _farm(spec, n_workers=4, fault_plan=plan, task_timeout=0.8).render()
    assert np.array_equal(res.frames, reference.frames)
    assert res.n_timeouts >= 1
    accepted = [a for a in res.attempts if a.task_index == 2 and a.outcome.endswith("ok")]
    assert len(accepted) == 1


def test_retry_exhaustion_degrades_to_serial(spec, reference):
    plan = FaultPlan((FaultPlan.raising(0, attempts=(0, 1, 2)),))
    res = _farm(spec, n_workers=2, fault_plan=plan, max_attempts=3).render()
    assert np.array_equal(res.frames, reference.frames)
    assert res.n_degraded == 1
    assert res.n_retries >= 3


def test_all_workers_dead_error_path(spec):
    """Unrecoverable pool loss surfaces as SupervisorError, not a hang."""
    from repro.runtime.local import _TASK_FNS, _worker_init
    from repro.runtime.supervisor import TaskSupervisor

    plan = FaultPlan((FaultPlan.crash(0, attempts=tuple(range(8))),))
    sup = TaskSupervisor(
        _TASK_FNS["frame"],
        _farm(spec, n_workers=2)._tasks(),
        executor="process",
        n_workers=2,
        initializer=_worker_init,
        initargs=(spec,),
        fault_plan=plan,
        max_attempts=8,
        max_pool_rebuilds=1,  # cap rebuilds low so the test is quick
    )
    with pytest.raises(SupervisorError, match="pool lost"):
        sup.run()


def test_thread_executor_raise_faults_recovered(spec, reference):
    plan = FaultPlan((FaultPlan.raising(4),))
    res = _farm(spec, n_workers=2, executor="thread", fault_plan=plan).render()
    assert np.array_equal(res.frames, reference.frames)
    assert res.n_retries == 1


def test_serial_executor_corrupt_fault_recovered(spec, reference):
    plan = FaultPlan((FaultPlan.corrupting(3),))
    res = _farm(spec, n_workers=1, executor="serial", fault_plan=plan).render()
    assert np.array_equal(res.frames, reference.frames)
    assert res.n_invalid == 1


# -- checkpoint/resume -----------------------------------------------------------
def test_resume_after_midway_failure_is_bit_identical(spec, reference, tmp_path):
    """Kill a render midway (via an unrecoverable fault), then resume: only
    the unfinished tasks re-execute and the frames are exactly equal."""
    run_dir = tmp_path / "run"
    poison = FaultPlan(
        tuple(FaultPlan.raising(i, attempts=tuple(range(6))) for i in (6, 9))
    )
    farm = _farm(
        spec, n_workers=2, fault_plan=poison, max_attempts=2, degrade_serial=False
    )
    with pytest.raises(SupervisorError):
        farm.render(run_dir=run_dir)

    spooled = sorted(run_dir.glob("task_*.npz"))
    assert 0 < len(spooled) < 12  # interrupted: some but not all tasks finished

    res = _farm(spec, n_workers=2).render(resume=run_dir)
    assert np.array_equal(res.frames, reference.frames)
    assert res.n_from_checkpoint == len(spooled)
    executed = {a.task_index for a in res.attempts}
    assert len(executed) == 12 - len(spooled)  # only unfinished tasks re-ran


def test_resume_with_everything_done_executes_nothing(spec, reference, tmp_path):
    run_dir = tmp_path / "run"
    first = _farm(spec, n_workers=2).render(run_dir=run_dir)
    assert np.array_equal(first.frames, reference.frames)
    again = _farm(spec, n_workers=2).render(resume=run_dir)
    assert np.array_equal(again.frames, reference.frames)
    assert again.n_from_checkpoint == again.n_tasks == 12
    assert again.attempts == []
    assert again.stats.total == first.stats.total  # spooled ray counts survive


def test_corrupt_spool_file_re_renders_that_task(spec, reference, tmp_path):
    run_dir = tmp_path / "run"
    _farm(spec, n_workers=2).render(run_dir=run_dir)
    victim = run_dir / "task_0003.npz"
    victim.write_bytes(b"not a zip at all")
    res = _farm(spec, n_workers=2).render(resume=run_dir)
    assert np.array_equal(res.frames, reference.frames)
    assert res.n_from_checkpoint == 11
    assert {a.task_index for a in res.attempts} == {3}


def test_resume_manifest_mismatch_rejected(spec, tmp_path):
    run_dir = tmp_path / "run"
    _farm(spec, n_workers=2).render(run_dir=run_dir)
    other = _farm(spec, n_workers=2, mode="sequence")
    with pytest.raises(ValueError, match="manifest"):
        other.render(resume=run_dir)
    # The manifest itself is valid json describing the original run.
    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["mode"] == "frame"
    assert manifest["n_tasks"] == 12


def test_sequence_mode_resume(spec, reference, tmp_path):
    run_dir = tmp_path / "run"
    farm = _farm(spec, n_workers=2, mode="sequence", executor="serial")
    first = farm.render(run_dir=run_dir)
    assert np.array_equal(first.frames, reference.frames)
    res = _farm(spec, n_workers=2, mode="sequence", executor="serial").render(resume=run_dir)
    assert np.array_equal(res.frames, reference.frames)
    assert res.n_from_checkpoint == res.n_tasks


def test_hybrid_mode_resume(spec, reference, tmp_path):
    run_dir = tmp_path / "run"
    farm = _farm(spec, mode="hybrid", executor="serial", frames_per_chunk=2)
    farm.render(run_dir=run_dir)
    res = _farm(spec, mode="hybrid", executor="serial", frames_per_chunk=2).render(
        resume=run_dir
    )
    assert np.array_equal(res.frames, reference.frames)
    assert res.n_from_checkpoint == res.n_tasks == 24


def test_run_dir_and_conflicting_resume_rejected(spec, tmp_path):
    farm = _farm(spec, executor="serial")
    with pytest.raises(ValueError, match="not two different"):
        farm.render(run_dir=tmp_path / "a", resume=tmp_path / "b")


# -- worker cache ----------------------------------------------------------------
def test_worker_cache_keyed_by_spec(spec):
    """Two concurrent thread farms with different specs must not poison each
    other's per-process animation cache."""
    other = AnimationSpec.newton(n_frames=2, width=32, height=24)
    farm_a = _farm(spec, n_workers=2, executor="thread")
    farm_b = _farm(other, n_workers=2, executor="thread", mode="sequence")
    ref_a = farm_a.render_reference()
    ref_b = farm_b.render_reference()

    import threading

    results = {}

    def run(name, farm):
        results[name] = farm.render()

    threads = [
        threading.Thread(target=run, args=("a", farm_a)),
        threading.Thread(target=run, args=("b", farm_b)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert np.array_equal(results["a"].frames, ref_a.frames)
    assert np.array_equal(results["b"].frames, ref_b.frames)
