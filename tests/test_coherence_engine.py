"""Tests for the incremental coherent renderer — the paper's Figure 3."""

import numpy as np
import pytest

from repro.coherence import CoherentRenderer, grid_for_animation, validate_sequence
from repro.render import RayTracer
from repro.scene import Camera, FunctionAnimation, StaticAnimation


def test_first_frame_computes_everything(moving_ball_animation):
    r = CoherentRenderer(moving_ball_animation, grid_resolution=8)
    rep = r.render_next()
    assert rep.frame == 0
    assert rep.n_computed == moving_ball_animation.camera_at(0).n_pixels
    assert rep.n_copied == 0
    assert rep.stats.total > 0


def test_static_animation_computes_nothing_after_first(simple_scene):
    anim = StaticAnimation(simple_scene, 3)
    r = CoherentRenderer(anim, grid_resolution=8)
    r.render_next()
    rep1 = r.render_next()
    rep2 = r.render_next()
    assert rep1.n_computed == 0 and rep2.n_computed == 0
    assert rep1.stats.total == 0


def test_incremental_equals_full(moving_ball_animation):
    r = CoherentRenderer(moving_ball_animation, grid_resolution=12)
    for f in range(moving_ball_animation.n_frames):
        r.render_next()
        full, _ = RayTracer(moving_ball_animation.scene_at(f)).render()
        np.testing.assert_array_equal(r.framebuffer.data, full.data)


def test_dirty_set_shrinks_work(moving_ball_animation):
    r = CoherentRenderer(moving_ball_animation, grid_resolution=12)
    rep0 = r.render_next()
    rep1 = r.render_next()
    assert 0 < rep1.n_computed < rep0.n_computed
    assert rep1.n_copied > 0


def test_region_restriction(moving_ball_animation):
    cam = moving_ball_animation.camera_at(0)
    region = np.arange(cam.n_pixels // 2)  # top half of the image
    r = CoherentRenderer(moving_ball_animation, region=region, grid_resolution=12)
    rep = r.render_next()
    assert rep.n_computed == region.size
    # Pixels outside the region stay untouched (zero).
    outside = np.arange(cam.n_pixels // 2, cam.n_pixels)
    assert np.all(r.framebuffer.gather(outside) == 0.0)
    # Inside matches the full render.
    full, _ = RayTracer(moving_ball_animation.scene_at(0)).render()
    np.testing.assert_array_equal(r.framebuffer.gather(region), full.gather(region))


def test_region_incremental_equals_full(moving_ball_animation):
    cam = moving_ball_animation.camera_at(0)
    region = np.arange(0, cam.n_pixels, 3)  # a strided subset
    r = CoherentRenderer(moving_ball_animation, region=region, grid_resolution=12)
    for f in range(moving_ball_animation.n_frames):
        r.render_next()
        full, _ = RayTracer(moving_ball_animation.scene_at(f)).render()
        np.testing.assert_array_equal(r.framebuffer.gather(region), full.gather(region))


def test_frame_range(moving_ball_animation):
    r = CoherentRenderer(
        moving_ball_animation, grid_resolution=8, first_frame=2, last_frame=4
    )
    rep = r.render_next()
    assert rep.frame == 2
    assert rep.n_computed == moving_ball_animation.camera_at(0).n_pixels  # chain start
    r.render_next()
    assert r.frames_remaining == 0
    with pytest.raises(StopIteration):
        r.render_next()


def test_run_renders_all(moving_ball_animation):
    r = CoherentRenderer(moving_ball_animation, grid_resolution=8)
    reports = r.run()
    assert [rep.frame for rep in reports] == [0, 1, 2, 3]


def test_camera_move_rejected(simple_scene):
    anim = FunctionAnimation(
        simple_scene,
        3,
        camera_fn=lambda f: Camera(
            position=(f * 1.0, 2, -6), look_at=(0, 1, 0), width=48, height=36
        ),
    )
    r = CoherentRenderer(anim, grid_resolution=8)
    r.render_next()
    with pytest.raises(ValueError, match="camera moved"):
        r.render_next()


def test_invalid_frame_range(moving_ball_animation):
    with pytest.raises(ValueError):
        CoherentRenderer(moving_ball_animation, first_frame=3, last_frame=3)
    with pytest.raises(ValueError):
        CoherentRenderer(moving_ball_animation, first_frame=0, last_frame=99)


def test_invalid_region(moving_ball_animation):
    with pytest.raises(ValueError):
        CoherentRenderer(moving_ball_animation, region=np.array([-1]))


def test_grid_for_animation_covers_all_frames(moving_ball_animation):
    grid = grid_for_animation(moving_ball_animation, 8)
    for f in range(moving_ball_animation.n_frames):
        b = moving_ball_animation.scene_at(f).finite_bounds()
        assert np.all(grid.bounds.lo <= b.lo) and np.all(grid.bounds.hi >= b.hi)


def test_map_entries_tracked(moving_ball_animation):
    r = CoherentRenderer(moving_ball_animation, grid_resolution=8)
    rep = r.render_next()
    assert rep.map_entries > 0
    assert r.pixel_map.n_entries == rep.map_entries


def test_validate_sequence_moving_ball(moving_ball_animation):
    rep = validate_sequence(moving_ball_animation, grid_resolution=12)
    assert rep.all_exact
    assert rep.all_conservative
    assert rep.mean_overprediction() >= 1.0


def test_validate_sequence_supersampled(moving_ball_animation):
    """Exactness must hold under supersampling too."""
    rep = validate_sequence(moving_ball_animation, grid_resolution=12, samples_per_axis=2)
    assert rep.all_exact
    assert rep.all_conservative


def test_computed_fraction(moving_ball_animation):
    r = CoherentRenderer(moving_ball_animation, grid_resolution=12)
    rep0 = r.render_next()
    assert rep0.computed_fraction == 1.0
    rep1 = r.render_next()
    assert 0.0 < rep1.computed_fraction < 1.0
