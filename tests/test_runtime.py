"""Tests for AnimationSpec and the real local render farm."""

import numpy as np
import pytest

from repro.runtime import AnimationSpec, LocalRenderFarm
from repro.scene import Animation


def test_spec_resolves_and_builds():
    spec = AnimationSpec.newton(n_frames=2, width=16, height=12)
    anim = spec.build()
    assert isinstance(anim, Animation)
    assert anim.n_frames == 2


def test_spec_colon_and_dot_paths():
    a = AnimationSpec("repro.scenes.newton:newton_animation", {"n_frames": 2, "width": 16, "height": 12})
    b = AnimationSpec("repro.scenes.newton.newton_animation", {"n_frames": 2, "width": 16, "height": 12})
    assert a.build().n_frames == b.build().n_frames == 2


def test_spec_bad_paths():
    with pytest.raises(ValueError):
        AnimationSpec("justafunction").resolve()
    with pytest.raises(ValueError):
        AnimationSpec("repro.scenes.newton:no_such_fn").resolve()
    with pytest.raises(ModuleNotFoundError):
        AnimationSpec("no.such.module:fn").resolve()


def test_spec_non_animation_factory():
    spec = AnimationSpec("repro.scenes.newton:newton_scene", {"width": 16, "height": 12})
    with pytest.raises(TypeError):
        spec.build()


@pytest.fixture(scope="module")
def spec():
    return AnimationSpec.newton(n_frames=3, width=48, height=36)


@pytest.fixture(scope="module")
def reference(spec):
    farm = LocalRenderFarm(spec, mode="frame", executor="serial", grid_resolution=12)
    return farm.render_reference()


def test_frame_division_serial_matches_reference(spec, reference):
    farm = LocalRenderFarm(spec, mode="frame", executor="serial", grid_resolution=12)
    res = farm.render()
    assert res.n_tasks == 12  # 4x3 default block grid
    np.testing.assert_array_equal(res.frames, reference.frames)
    assert res.stats.total == reference.stats.total


def test_sequence_division_serial_matches_reference(spec, reference):
    farm = LocalRenderFarm(
        spec, n_workers=2, mode="sequence", executor="serial", grid_resolution=12
    )
    res = farm.render()
    assert res.n_tasks == 2
    np.testing.assert_array_equal(res.frames, reference.frames)
    # Sequence division restarts a chain mid-animation: strictly more rays.
    assert res.stats.total > reference.stats.total


def test_thread_executor_matches(spec, reference):
    farm = LocalRenderFarm(spec, n_workers=2, mode="frame", executor="thread", grid_resolution=12)
    res = farm.render()
    np.testing.assert_array_equal(res.frames, reference.frames)


def test_process_executor_matches(spec, reference):
    farm = LocalRenderFarm(spec, n_workers=2, mode="frame", executor="process", grid_resolution=12)
    res = farm.render()
    np.testing.assert_array_equal(res.frames, reference.frames)


def test_hybrid_mode_matches_reference(spec, reference):
    farm = LocalRenderFarm(
        spec, mode="hybrid", executor="serial", grid_resolution=12, frames_per_chunk=2
    )
    res = farm.render()
    # 12 blocks x 2 chunks (3 frames -> chunks of 2 and 1).
    assert res.n_tasks == 24
    np.testing.assert_array_equal(res.frames, reference.frames)
    # Chunked chains restart per chunk: strictly more rays than one chain.
    assert res.stats.total > reference.stats.total


def test_custom_block_size(spec, reference):
    farm = LocalRenderFarm(
        spec, mode="frame", executor="serial", block_w=16, block_h=12, grid_resolution=12
    )
    res = farm.render()
    assert res.n_tasks == 9
    np.testing.assert_array_equal(res.frames, reference.frames)


def test_farm_validation(spec):
    with pytest.raises(ValueError):
        LocalRenderFarm(spec, mode="nope")
    with pytest.raises(ValueError):
        LocalRenderFarm(spec, executor="nope")
    with pytest.raises(ValueError):
        LocalRenderFarm(spec, n_workers=0)


def test_farm_result_shape(spec, reference):
    anim = spec.build()
    cam = anim.camera_at(0)
    assert reference.frames.shape == (anim.n_frames, cam.height, cam.width, 3)
    assert reference.n_frames == anim.n_frames
