"""repro.obs: trace propagation, the run ledger, and utilization analysis.

Three layers, cheapest first: unit tests of the trace/ledger/analysis
primitives on synthetic event streams with exactly known answers; the
virtual-clock simulator producing deterministic utilization reports that
reproduce the paper's sequence-vs-frame-division idle contrast; and the
real TCP loopback farm, whose merged master+worker stream must validate
against the pinned v4 schema with zero orphan spans — including when a
worker daemon is killed mid-run.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster import ncsu_testbed
from repro.obs import (
    RunLedger,
    StatusServer,
    TraceContext,
    chrome_trace,
    compare_division,
    fetch_status,
    find_orphan_spans,
    flight_span_id,
    format_utilization,
    new_run_id,
    render_status,
    utilization_report,
    worker_session,
    worker_timelines,
    write_chrome_trace,
)
from repro.parallel import simulate_frame_division_fc, simulate_sequence_division_fc
from repro.telemetry import (
    SCHEMA_VERSION,
    InMemorySink,
    Telemetry,
    VirtualClock,
    validate_events,
)


# -- trace identity ---------------------------------------------------------------
def test_trace_context_round_trip():
    ctx = TraceContext(run="abc", parent="A7", seed="s7", worker="w1")
    assert TraceContext.from_arg(ctx.to_arg()) == ctx
    # Legacy slot values: True = on without context, falsy = off.
    assert TraceContext.from_arg(True) == TraceContext()
    assert TraceContext.from_arg(False) is None
    assert TraceContext.from_arg(None) is None


def test_run_ids_and_flight_ids():
    assert new_run_id() != new_run_id()
    assert flight_span_id(12) == "A12"


def test_worker_session_namespaces_span_ids():
    ctx = TraceContext(run="r1", parent=flight_span_id(3), seed="s3").to_arg()
    tel_a, sink_a = worker_session(ctx, attempt=0)
    tel_b, sink_b = worker_session(ctx, attempt=1)  # retry of the same args
    with tel_a.span("task", worker="w", mode="m", frame0=0, frame1=1,
                    region=1, rays=0, n_computed=0, attempt=0):
        pass
    with tel_b.span("task", worker="w", mode="m", frame0=0, frame1=1,
                    region=1, rays=0, n_computed=0, attempt=1):
        pass
    (rec_a,), (rec_b,) = sink_a.events, sink_b.events
    assert rec_a["span"] != rec_b["span"]  # distinct namespaces per attempt
    assert rec_a["parent"] == rec_b["parent"] == "A3"
    assert rec_a["run"] == "r1"


def test_worker_session_disabled_and_legacy():
    tel, sink = worker_session(False)
    assert not tel.enabled and sink is None
    tel, sink = worker_session(True)  # legacy bool: on, no trace context
    assert tel.enabled and sink is not None


def test_find_orphan_spans():
    run = {"v": SCHEMA_VERSION, "type": "span", "name": "run", "t": 0.0,
           "dur": 1.0, "span": 1, "parent": None, "attrs": {}}
    child = dict(run, name="obs.flight", span="A0", parent=1)
    orphan = dict(run, name="task", span="x:1", parent="A9")
    assert find_orphan_spans([run, child]) == []
    assert find_orphan_spans([run, child, orphan]) == [orphan]


# -- synthetic golden stream ------------------------------------------------------
def _golden_events():
    """Two lanes on a virtual clock: A busy [0,8], B busy [0,4], wall 8s.

    Aggregate idle is exactly 1 - (8+4)/(2*8) = 0.25.
    """
    now = {"t": 0.0}
    tel = Telemetry(sinks=[mem := InMemorySink()], clock=VirtualClock(lambda: now["t"]))
    tel.event("run.start", engine="sim", workload="golden", n_frames=2,
              width=8, height=6, n_workers=2, mode="sequence")
    for worker, t0 in (("A", 0.0), ("A", 4.0), ("B", 0.0)):
        tel.emit_span("task", t0, 4.0, worker=worker, mode="sequence", frame0=0,
                      frame1=1, region=48, rays=100, n_computed=48, attempt=0)
    tel.event("frame", frame=0, n_computed=48, n_copied=48, rays_camera=60,
              rays_reflected=20, rays_refracted=10, rays_shadow=10, rays_total=100)
    now["t"] = 8.0
    tel.event("run.end", wall_time=8.0, computed_pixels=48, copied_pixels=48,
              n_tasks=3, n_workers=2, rays_camera=60, rays_reflected=20,
              rays_refracted=10, rays_shadow=10, rays_total=100)
    validate_events(mem.events)
    return mem.events


def test_utilization_report_golden():
    rep = utilization_report(_golden_events())
    assert rep.wall == pytest.approx(8.0)
    assert rep.idle_frac == pytest.approx(0.25)
    assert rep.balance == pytest.approx(0.5)
    rows = {w["worker"]: w for w in rep.workers}
    assert rows["A"]["util"] == pytest.approx(1.0)
    assert rows["B"]["util"] == pytest.approx(0.5)
    assert rows["B"]["idle"] == pytest.approx(4.0)
    assert rep.recompute_frac == pytest.approx(0.5)
    text = format_utilization(rep, gantt_width=8)
    assert "aggregate idle 25.0%" in text
    assert "|########|" in text  # lane A solid
    assert "|####....|" in text  # lane B half idle


def test_straggler_flagging():
    now = {"t": 0.0}
    tel = Telemetry(sinks=[mem := InMemorySink()], clock=VirtualClock(lambda: now["t"]))
    for i, dur in enumerate((1.0, 1.0, 1.0, 9.0)):
        tel.emit_span("task", 0.0, dur, worker=f"w{i}", mode="m", frame0=0,
                      frame1=1, region=1, rays=0, n_computed=0, attempt=0)
    rep = utilization_report(mem.events, straggler_z=1.5)
    assert rep.stragglers == ["w3"]


def test_worker_timelines_fold_flights_into_comms():
    events = _golden_events()
    tel = Telemetry(sinks=[mem := InMemorySink()])
    tel.emit_span("obs.flight", 0.0, 4.5, span="A0", parent=None,
                  worker="A", seq=0, attempt=0, outcome="ok")
    lanes = worker_timelines(events + mem.events)
    assert lanes["A"].busy == pytest.approx(8.0)
    # flight_time (4.5) < busy: comms clamps at zero, never negative
    assert lanes["A"].comms == pytest.approx(0.0)


def _balanced_events():
    """The same 12 busy-seconds as :func:`_golden_events`, but split
    evenly across both lanes — the run finishes at 6s with zero idle."""
    now = {"t": 0.0}
    tel = Telemetry(sinks=[mem := InMemorySink()], clock=VirtualClock(lambda: now["t"]))
    tel.event("run.start", engine="sim", workload="golden", n_frames=2,
              width=8, height=6, n_workers=2, mode="frame")
    for worker in ("A", "B"):
        tel.emit_span("task", 0.0, 6.0, worker=worker, mode="frame", frame0=0,
                      frame1=1, region=48, rays=100, n_computed=48, attempt=0)
    now["t"] = 6.0
    tel.event("run.end", wall_time=6.0, computed_pixels=48, copied_pixels=48,
              n_tasks=2, n_workers=2, rays_camera=60, rays_reflected=20,
              rays_refracted=10, rays_shadow=10, rays_total=100)
    return mem.events


def test_compare_division_contrast():
    seq = utilization_report(_golden_events())
    frame = utilization_report(_balanced_events())
    text = compare_division({"sequence": seq, "frame": frame})
    assert "'frame' keeps lanes busiest" in text
    assert "25.0 pp less idle than 'sequence'" in text
    with pytest.raises(ValueError):
        compare_division({"only": seq})


# -- simulator: deterministic reports, the paper's division contrast ---------------
def _sim_report(strategy, oracle):
    tel = Telemetry(sinks=[mem := InMemorySink()])
    strategy(oracle, ncsu_testbed(), sec_per_work_unit=1e-4, telemetry=tel)
    tel.close()
    validate_events(mem.events)
    return mem.events


def test_sim_utilization_is_deterministic(tiny_oracle):
    a = _sim_report(simulate_sequence_division_fc, tiny_oracle)
    b = _sim_report(simulate_sequence_division_fc, tiny_oracle)
    assert a == b  # virtual clock: bit-identical streams run-to-run
    rep = utilization_report(a)
    assert rep.engine == "sim" and rep.n_workers > 1
    assert 0.0 <= rep.idle_frac < 1.0


def test_sim_division_contrast_from_events_alone(tiny_oracle):
    seq = utilization_report(_sim_report(simulate_sequence_division_fc, tiny_oracle))
    frame = utilization_report(_sim_report(simulate_frame_division_fc, tiny_oracle))
    # The paper's load-balance claim: static sequence division strands
    # lanes; frame division keeps them busy.
    assert frame.idle_frac < seq.idle_frac
    assert "keeps lanes busiest" in compare_division({"sequence": seq, "frame": frame})


# -- ledger + live surface --------------------------------------------------------
def _event(name, **attrs):
    return {"v": SCHEMA_VERSION, "type": "event", "name": name, "t": 0.0, "attrs": attrs}


def test_ledger_folds_stream():
    now = {"t": 100.0}
    led = RunLedger(clock=lambda: now["t"])
    led.emit(_event("run.start", engine="farm", workload="newton", n_frames=4,
                    width=8, height=6, n_workers=2, mode="adaptive"))
    led.emit(_event("net.worker.join", worker="w0", host="h", pid=1, cores=2, score=1.0))
    led.emit(_event("net.assign", worker="w0", seq=0, frame0=0, frame1=2, bytes=10))
    snap = led.snapshot()
    assert snap["run"] == "" and snap["engine"] == "farm" and not snap["done"]
    assert [w["worker"] for w in snap["workers"]] == ["w0"]
    assert [a["seq"] for a in snap["in_flight"]] == [0]

    now["t"] = 101.0  # past the snapshot TTL
    led.emit({"v": SCHEMA_VERSION, "type": "span", "name": "obs.flight", "t": 0.0,
              "dur": 0.5, "span": "A0", "parent": 1,
              "attrs": {"worker": "w0", "seq": 0, "attempt": 1, "outcome": "ok"}})
    led.emit(_event("frame", frame=0, n_computed=1, n_copied=0, rays_camera=0,
                    rays_reflected=0, rays_refracted=0, rays_shadow=0, rays_total=1))
    snap = led.snapshot()
    assert snap["in_flight"] == [] and snap["tasks_done"] == 1
    assert snap["frames_done"] == 1 and snap["attempts"] == {"ok": 1}
    assert snap["workers"][0]["n_done"] == 1


def test_ledger_prefers_flight_attempts_over_summary():
    led = RunLedger(clock=lambda: 0.0)
    led.emit({"v": SCHEMA_VERSION, "type": "span", "name": "obs.flight", "t": 0.0,
              "dur": 0.5, "span": "A0", "parent": None,
              "attrs": {"worker": "w0", "seq": 0, "attempt": 1, "outcome": "ok"}})
    # The run-end summary re-describes the same dispatch; it must not
    # double the count.
    led.emit(_event("task.attempt", task=0, attempt=1, outcome="ok",
                    duration=0.5, worker="w0"))
    assert led.snapshot()["attempts"] == {"ok": 1}


def test_ledger_records_losses():
    led = RunLedger(clock=lambda: 0.0)
    led.emit(_event("net.assign", worker="w0", seq=3, frame0=0, frame1=1, bytes=1))
    led.emit(_event("net.worker.lost", worker="w0", reason="eof", seq=3))
    snap = led.snapshot()
    assert snap["losses"] == [{"worker": "w0", "reason": "eof", "blackbox": ""}]
    assert snap["in_flight"] == []


def test_status_server_round_trip():
    led = RunLedger()
    led.emit(_event("run.start", engine="farm", workload="newton", n_frames=2,
                    width=8, height=6, n_workers=1, mode="frame"))
    with StatusServer(led, port=0) as srv:
        snap = fetch_status(f"127.0.0.1:{srv.port}")
    assert snap["engine"] == "farm" and snap["n_frames"] == 2
    text = render_status(snap)
    assert "repro farm" in text and "newton" in text


# -- chrome trace export ----------------------------------------------------------
def test_chrome_trace_shapes():
    events = _golden_events()
    doc = chrome_trace(events, run_id="r123")
    assert doc["otherData"]["run_id"] == "r123"
    lane_names = {e["tid"]: e["args"]["name"]
                  for e in doc["traceEvents"] if e["ph"] == "M"}
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 3  # the three task spans
    assert {lane_names[e["tid"]] for e in xs} == {"A", "B"}  # one track per lane
    assert all(e["pid"] == 1 and e["dur"] == pytest.approx(4e6) for e in xs)
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert {e["name"] for e in instants} >= {"run.start", "frame", "run.end"}


def test_write_chrome_trace(tmp_path):
    import json

    path = tmp_path / "sub" / "run.trace.json"
    n = write_chrome_trace(_golden_events(), path, run_id="r1")
    doc = json.loads(path.read_text())
    assert n == len(doc["traceEvents"]) >= len(_golden_events())
    assert doc["displayTimeUnit"] == "ms"


# -- the real TCP farm ------------------------------------------------------------
def _tcp_render(n_workers, n_frames, die_after=None):
    from repro.api import RenderRequest, render

    return render(RenderRequest(
        workload="newton", engine="farm", n_frames=n_frames, width=48, height=36,
        n_workers=n_workers, transport="tcp", schedule="adaptive",
        net_die_after=die_after, telemetry=True,
    ))


def test_tcp_merged_stream_validates_v4_no_orphans():
    res = _tcp_render(n_workers=2, n_frames=4)
    events = res.events
    validate_events(events)  # pinned v4 schema, master + worker merged
    assert all(e["v"] == SCHEMA_VERSION for e in events)
    assert find_orphan_spans(events) == []
    runs = {e.get("run") for e in events if e.get("run")}
    assert len(runs) == 1  # one trace id across both sides of the wire
    task_lanes = {e["attrs"]["worker"] for e in events
                  if e.get("type") == "span" and e.get("name") == "task"}
    assert task_lanes == {"w0", "w1"}  # worker-side spans landed, lane-labeled
    assert any(e.get("name") == "obs.clock" for e in events)


def test_tcp_killed_worker_single_trace():
    res = _tcp_render(n_workers=3, n_frames=6, die_after={0: 1})
    events = res.events
    validate_events(events)
    assert find_orphan_spans(events) == []
    assert len({e.get("run") for e in events if e.get("run")}) == 1
    flights = [e for e in events if e.get("name") == "obs.flight"]
    outcomes = {e["attrs"]["outcome"] for e in flights}
    assert "ok" in outcomes and outcomes - {"ok"}  # the killed attempt is visible
    lost = [e for e in events if e.get("name") == "net.worker.lost"]
    assert len(lost) == 1 and lost[0]["attrs"]["worker"] in {"w0", "w1", "w2"}
    # The reassigned work completed: every frame has a frame event.
    frames = {e["attrs"]["frame"] for e in events if e.get("name") == "frame"}
    assert frames == set(range(6))
    rep = utilization_report(events)
    assert rep.n_lost == 1 and len(rep.workers) == 3
