"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import build_parser, main
from repro.imageio import read_targa

MINI_SCENE = """
camera { location <0,1,-4> look_at <0,0.5,0> width 32 height 24 }
light_source { <3,5,-3>, rgb <1,1,1> }
plane { <0,1,0>, 0 texture { pigment { checker rgb <1,1,1> rgb <0,0,0> } } }
sphere { <0,0.6,0>, 0.6 texture { finish { reflection 0.4 } } }
"""


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_render_command(tmp_path, capsys):
    scene = tmp_path / "s.sdl"
    scene.write_text(MINI_SCENE)
    out = tmp_path / "out.tga"
    rc = main(["render", str(scene), "-o", str(out)])
    assert rc == 0
    img = read_targa(out)
    assert img.shape == (24, 32, 3)
    assert "parsed 2 objects" in capsys.readouterr().out


def test_animate_command(tmp_path, capsys):
    out = tmp_path / "frames"
    rc = main(
        [
            "animate",
            "newton",
            "--frames", "2",
            "--width", "32",
            "--height", "24",
            "--grid", "12",
            "--out", str(out),
        ]
    )
    assert rc == 0
    assert sorted(p.name for p in out.glob("*.tga")) == ["newton0000.tga", "newton0001.tga"]
    assert "pixel-renders avoided" in capsys.readouterr().out


def test_animate_shadow_coherence(tmp_path, capsys):
    rc = main(
        [
            "animate",
            "newton",
            "--frames", "3",
            "--width", "32",
            "--height", "24",
            "--grid", "12",
            "--out", str(tmp_path / "f"),
            "--shadow-coherence",
        ]
    )
    assert rc == 0
    assert "shadow rays saved" in capsys.readouterr().out


def test_validate_command(capsys):
    rc = main(
        ["validate", "brick", "--frames", "2", "--width", "32", "--height", "24", "--grid", "12"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "exact: True" in out
    assert "conservative: True" in out


def test_table1_command(capsys):
    rc = main(
        ["table1", "--frames", "3", "--width", "32", "--height", "24", "--grid", "12"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "(8) frame div+FC" in out
    assert "2:55:51" in out


def test_farm_command(capsys):
    rc = main(
        [
            "farm",
            "newton",
            "--frames", "2",
            "--width", "32",
            "--height", "24",
            "--grid", "12",
            "--workers", "2",
        ]
    )
    assert rc == 0
    assert "bit-identical to single-renderer reference: True" in capsys.readouterr().out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["animate", "nonsense"])


def test_oracle_command(tmp_path, capsys):
    rc = main(
        [
            "oracle",
            "newton",
            "--frames", "3",
            "--width", "32",
            "--height", "24",
            "--grid", "12",
            "--save", str(tmp_path / "o.npz"),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "mean_dirty_fraction" in out
    assert "ray_reduction" in out
    assert (tmp_path / "o.npz").exists()


def test_farm_hybrid_mode(capsys):
    rc = main(
        [
            "farm",
            "newton",
            "--frames", "2",
            "--width", "32",
            "--height", "24",
            "--grid", "12",
            "--workers", "2",
            "--mode", "hybrid",
        ]
    )
    assert rc == 0
    assert "bit-identical" in capsys.readouterr().out
