"""Tests for the discrete-event engine, Ethernet model and machines."""

import pytest

from repro.cluster import (
    Ethernet,
    FifoResource,
    Machine,
    Simulator,
    ThrashModel,
    homogeneous_cluster,
    ncsu_testbed,
)


# -- Simulator --------------------------------------------------------------
def test_events_fire_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(2.0, lambda: log.append("b"))
    sim.schedule(1.0, lambda: log.append("a"))
    sim.schedule(3.0, lambda: log.append("c"))
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 3.0


def test_tie_break_is_insertion_order():
    sim = Simulator()
    log = []
    sim.schedule(1.0, lambda: log.append(1))
    sim.schedule(1.0, lambda: log.append(2))
    sim.run()
    assert log == [1, 2]


def test_schedule_during_run():
    sim = Simulator()
    log = []

    def first():
        log.append("first")
        sim.schedule(1.0, lambda: log.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert log == ["first", "second"]
    assert sim.now == 2.0


def test_run_until():
    sim = Simulator()
    log = []
    sim.schedule(1.0, lambda: log.append(1))
    sim.schedule(5.0, lambda: log.append(5))
    sim.run(until=2.0)
    assert log == [1]
    sim.run()
    assert log == [1, 5]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(-1.0, lambda: None)


# -- FifoResource ---------------------------------------------------------------
def test_fifo_serializes():
    sim = Simulator()
    res = FifoResource(sim)
    done = []
    res.acquire(2.0, lambda s, e: done.append((s, e)))
    res.acquire(3.0, lambda s, e: done.append((s, e)))
    sim.run()
    assert done == [(0.0, 2.0), (2.0, 5.0)]
    assert res.total_busy == 5.0
    assert res.n_served == 2


def test_fifo_idle_gap():
    sim = Simulator()
    res = FifoResource(sim)
    done = []
    sim.schedule(10.0, lambda: res.acquire(1.0, lambda s, e: done.append((s, e))))
    sim.run()
    assert done == [(10.0, 11.0)]
    assert res.utilization(11.0) == pytest.approx(1.0 / 11.0)


def test_fifo_negative_duration():
    sim = Simulator()
    res = FifoResource(sim)
    with pytest.raises(ValueError):
        res.acquire(-1.0, lambda s, e: None)


# -- Ethernet ----------------------------------------------------------------------
def test_transfer_time():
    sim = Simulator()
    eth = Ethernet(sim, bandwidth_bits_per_s=10e6, latency_s=0.001, efficiency=1.0)
    # 1.25 MB at 10 Mbit/s = 1 s (+1 ms latency).
    assert eth.transfer_time(1_250_000) == pytest.approx(1.001)


def test_transfers_serialize_on_shared_medium():
    sim = Simulator()
    eth = Ethernet(sim, bandwidth_bits_per_s=8e6, latency_s=0.0, efficiency=1.0)
    times = []
    eth.transmit(1_000_000, lambda: times.append(sim.now))  # 1 s
    eth.transmit(1_000_000, lambda: times.append(sim.now))  # queued behind
    sim.run()
    assert times == [1.0, 2.0]
    assert eth.n_messages == 2
    assert eth.bytes_carried == 2_000_000


def test_ethernet_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Ethernet(sim, bandwidth_bits_per_s=0)
    with pytest.raises(ValueError):
        Ethernet(sim, efficiency=0.0)
    eth = Ethernet(sim)
    with pytest.raises(ValueError):
        eth.transfer_time(-1)


# -- Machines --------------------------------------------------------------------
def test_ncsu_testbed_matches_paper():
    ms = ncsu_testbed()
    assert len(ms) == 3
    assert ms[0].speed == 2.0 and ms[0].memory_mb == 64.0
    assert ms[1].speed == 1.0 and ms[1].memory_mb == 32.0
    assert ms[2].speed == 1.0 and ms[2].memory_mb == 32.0
    assert len({m.name for m in ms}) == 3


def test_homogeneous_cluster():
    ms = homogeneous_cluster(5, speed=1.5)
    assert len(ms) == 5
    assert all(m.speed == 1.5 for m in ms)
    with pytest.raises(ValueError):
        homogeneous_cluster(0)


def test_machine_validation():
    with pytest.raises(ValueError):
        Machine("m", speed=0.0, memory_mb=32)
    with pytest.raises(ValueError):
        Machine("m", speed=1.0, memory_mb=0)


# -- ThrashModel -----------------------------------------------------------------
def test_no_thrash_when_fits():
    t = ThrashModel(alpha=1.0)
    assert t.slowdown(30.0, 64.0) == 1.0
    assert t.slowdown(64.0, 64.0) == 1.0
    assert t.slowdown(0.0, 64.0) == 1.0


def test_thrash_grows_with_excess():
    t = ThrashModel(alpha=1.0, exponent=0.5)
    s1 = t.slowdown(80.0, 64.0)
    s2 = t.slowdown(128.0, 64.0)
    assert 1.0 < s1 < s2
    assert s2 == pytest.approx(2.0)  # 1 + sqrt(1)


def test_thrash_linear_mode():
    t = ThrashModel(alpha=2.0, exponent=1.0)
    assert t.slowdown(96.0, 64.0) == pytest.approx(2.0)  # 1 + 2*0.5


def test_thrash_disabled():
    t = ThrashModel(alpha=0.0)
    assert t.slowdown(1000.0, 1.0) == 1.0


def test_thrash_validation():
    with pytest.raises(ValueError):
        ThrashModel(alpha=-1.0)
    with pytest.raises(ValueError):
        ThrashModel(exponent=0.0)
