"""Tests for the PVM-like virtual machine: tasks, messaging, timing."""

import pytest

from repro.cluster import (
    Compute,
    DeadlockError,
    Machine,
    Recv,
    Send,
    Sleep,
    ThrashModel,
    VirtualPVM,
    WriteFile,
)


def _machines():
    return [
        Machine("fast", speed=2.0, memory_mb=64),
        Machine("slow", speed=1.0, memory_mb=32),
    ]


def test_compute_duration_scales_with_speed():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=0.01)

    def work():
        yield Compute(units=100)

    pvm.spawn(work(), "fast", name="f")
    end = pvm.run()
    assert end == pytest.approx(0.5)  # 100 * 0.01 / 2

    pvm2 = VirtualPVM(_machines(), sec_per_work_unit=0.01)
    pvm2.spawn(work(), "slow", name="s")
    assert pvm2.run() == pytest.approx(1.0)


def test_tasks_on_same_machine_serialize():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=0.01)

    def work():
        yield Compute(units=100)

    pvm.spawn(work(), "fast")
    pvm.spawn(work(), "fast")
    assert pvm.run() == pytest.approx(1.0)  # 2 x 0.5 serialized


def test_tasks_on_different_machines_parallel():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=0.01)

    def work():
        yield Compute(units=100)

    pvm.spawn(work(), "fast")
    pvm.spawn(work(), "slow")
    assert pvm.run() == pytest.approx(1.0)  # max(0.5, 1.0)


def test_send_recv_roundtrip():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=0.01)
    received = []

    def receiver():
        msg = yield Recv()
        received.append((msg.src, msg.tag, msg.payload))

    def sender(dst):
        yield Send(dst, 100, {"x": 1}, tag="hello")

    rtid = pvm.spawn(receiver(), "fast", name="rx")
    stid = pvm.spawn(sender(rtid), "slow", name="tx")
    pvm.run()
    assert received == [(stid, "hello", {"x": 1})]


def test_recv_tag_filter_preserves_other_messages():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=0.01)
    got = []

    def receiver():
        msg = yield Recv(tag="b")
        got.append(msg.tag)
        msg = yield Recv()
        got.append(msg.tag)

    def sender(dst):
        yield Send(dst, 10, None, tag="a")
        yield Send(dst, 10, None, tag="b")

    rtid = pvm.spawn(receiver(), "fast")
    pvm.spawn(sender(rtid), "slow")
    pvm.run()
    assert got == ["b", "a"]


def test_message_transfer_takes_wire_time():
    pvm = VirtualPVM(
        _machines(),
        sec_per_work_unit=0.01,
        bandwidth_bits_per_s=8e6,
        latency_s=0.0,
        efficiency=1.0,
    )
    arrival = []

    def receiver():
        yield Recv()
        arrival.append(pvm.sim.now)

    def sender(dst):
        yield Send(dst, 1_000_000, None)  # 1 MB at 1 MB/s -> 1 s

    rtid = pvm.spawn(receiver(), "fast")
    pvm.spawn(sender(rtid), "slow")
    pvm.run()
    assert arrival == [pytest.approx(1.0)]


def test_thrash_slows_compute():
    pvm = VirtualPVM(
        _machines(), sec_per_work_unit=0.01, thrash=ThrashModel(alpha=1.0, exponent=1.0)
    )

    def work():
        yield Compute(units=100, working_set_mb=64)  # 2x slow machine memory

    pvm.spawn(work(), "slow")
    assert pvm.run() == pytest.approx(2.0)  # 1.0 * (1 + 1*1)


def test_write_file_uses_disk_bandwidth():
    machines = [Machine("m", speed=1.0, memory_mb=64, disk_mb_per_s=10.0)]
    pvm = VirtualPVM(machines, sec_per_work_unit=1.0)

    def work():
        yield WriteFile(5_000_000)  # 5 MB at 10 MB/s

    pvm.spawn(work(), "m")
    assert pvm.run() == pytest.approx(0.5)


def test_sleep():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=1.0)

    def work():
        yield Sleep(2.5)

    pvm.spawn(work(), "fast")
    assert pvm.run() == pytest.approx(2.5)


def test_deadlock_detection():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=1.0)

    def waiter():
        yield Recv()

    pvm.spawn(waiter(), "fast", name="stuck")
    with pytest.raises(DeadlockError, match="stuck"):
        pvm.run()


def test_task_result_collected():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=0.01)

    def work():
        yield Compute(units=1)
        return "done!"

    pvm.spawn(work(), "fast", name="worker")
    pvm.run()
    assert pvm.results()["worker"] == "done!"


def test_task_accounting():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=0.01)

    def work():
        yield Compute(units=100)
        yield Compute(units=50)

    tid = pvm.spawn(work(), "fast")
    pvm.run()
    ctx = pvm.task(tid)
    assert ctx.units_computed == 150
    assert ctx.compute_seconds == pytest.approx(0.75)
    assert ctx.finished


def test_cpu_busy_seconds():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=0.01)

    def work():
        yield Compute(units=100)

    pvm.spawn(work(), "fast")
    pvm.run()
    busy = pvm.cpu_busy_seconds()
    assert busy["fast"] == pytest.approx(0.5)
    assert busy["slow"] == 0.0


def test_send_to_unknown_tid():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=1.0)

    def bad():
        yield Send(999, 10, None)

    pvm.spawn(bad(), "fast")
    with pytest.raises(KeyError):
        pvm.run()


def test_unknown_request_type():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=1.0)

    def bad():
        yield "not-a-request"

    pvm.spawn(bad(), "fast")
    with pytest.raises(TypeError):
        pvm.run()


def test_spawn_on_unknown_machine():
    pvm = VirtualPVM(_machines(), sec_per_work_unit=1.0)
    with pytest.raises(KeyError):
        pvm.spawn((x for x in []), "nope")


def test_duplicate_machine_names_rejected():
    with pytest.raises(ValueError):
        VirtualPVM([Machine("m", 1, 32), Machine("m", 2, 64)])


def test_master_worker_demand_driven_balance():
    """The fast machine ends up doing about twice the tasks."""
    machines = [
        Machine("fast", speed=2.0, memory_mb=64),
        Machine("slow", speed=1.0, memory_mb=64),
    ]
    pvm = VirtualPVM(machines, sec_per_work_unit=0.001)
    n_tasks = 30

    def worker(master_tid):
        while True:
            msg = yield Recv()
            if msg.tag == "stop":
                return
            yield Compute(units=msg.payload)
            yield Send(master_tid, 100, None, tag="done")

    def master(worker_tids):
        remaining = n_tasks
        outstanding = 0
        for tid in worker_tids:
            yield Send(tid, 10, 1000.0, tag="work")
            remaining -= 1
            outstanding += 1
        while outstanding:
            msg = yield Recv(tag="done")
            outstanding -= 1
            if remaining:
                yield Send(msg.src, 10, 1000.0, tag="work")
                remaining -= 1
                outstanding += 1
        for tid in worker_tids:
            yield Send(tid, 10, None, tag="stop")

    wtids = [pvm.spawn(worker(3), m.name, name=f"w-{m.name}") for m in machines]
    pvm.spawn(master(wtids), "fast", name="master")
    pvm.run()
    fast_units = pvm.task(wtids[0]).units_computed
    slow_units = pvm.task(wtids[1]).units_computed
    assert fast_units / slow_units == pytest.approx(2.0, rel=0.15)
