"""Tests for the scene intersector and local shading."""

import numpy as np
import pytest

from repro.geometry import Plane, RayBatch, Sphere
from repro.lighting import PointLight
from repro.materials import Finish, Material
from repro.render import SceneIntersector, shade_local
from repro.scene import Camera, Scene


def _batch(origins, dirs):
    n = len(origins)
    return RayBatch(
        origins=np.asarray(origins, dtype=float),
        dirs=np.asarray(dirs, dtype=float),
        pixel=np.arange(n),
        weight=np.ones((n, 3)),
    )


def test_nearest_picks_closest_object():
    near = Sphere.at((0, 0, 0), 1.0, material=Material.matte((1, 0, 0)))
    far = Sphere.at((0, 0, 5), 1.0, material=Material.matte((0, 1, 0)))
    inter = SceneIntersector([far, near])  # order must not matter
    rec = inter.nearest(_batch([[0, 0, -5]], [[0, 0, 1]]))
    assert rec.hit[0]
    assert rec.obj_index[0] == 1
    assert rec.t[0] == pytest.approx(4.0)


def test_nearest_miss():
    inter = SceneIntersector([Sphere.at((0, 0, 0), 1.0)])
    rec = inter.nearest(_batch([[0, 5, -5]], [[0, 0, 1]]))
    assert not rec.hit[0]
    assert rec.obj_index[0] == -1


def test_shadow_attenuation_opaque_blocks():
    blocker = Sphere.at((0, 0, 0), 1.0, material=Material.matte((1, 1, 1)))
    inter = SceneIntersector([blocker])
    atten = inter.shadow_attenuation(
        np.array([[0.0, 0.0, -5.0]]), np.array([[0.0, 0.0, 1.0]]), np.array([10.0])
    )
    assert atten[0] == 0.0


def test_shadow_attenuation_transmissive_filters():
    glass = Sphere.at((0, 0, 0), 1.0, material=Material.glass())
    inter = SceneIntersector([glass])
    atten = inter.shadow_attenuation(
        np.array([[0.0, 0.0, -5.0]]), np.array([[0.0, 0.0, 1.0]]), np.array([10.0])
    )
    assert atten[0] == pytest.approx(glass.material.finish.transmission)


def test_shadow_attenuation_beyond_light_ignored():
    blocker = Sphere.at((0, 0, 5), 1.0, material=Material.matte((1, 1, 1)))
    inter = SceneIntersector([blocker])
    # Light at distance 2: the blocker at distance ~4 is behind the light.
    atten = inter.shadow_attenuation(
        np.array([[0.0, 0.0, -0.0]]), np.array([[0.0, 0.0, 1.0]]), np.array([2.0])
    )
    assert atten[0] == 1.0


def _shading_scene(light_pos=(0, 10, 0), finish=None):
    mat = Material(
        pigment=Material.matte((1.0, 1.0, 1.0)).pigment,
        finish=finish or Finish(ambient=0.0, diffuse=1.0, specular=0.0),
    )
    floor = Plane.from_normal((0, 1, 0), 0.0, material=mat, name="floor")
    cam = Camera(position=(0, 1, -5), look_at=(0, 0, 0), width=8, height=8)
    return Scene(
        camera=cam,
        objects=[floor],
        lights=[PointLight(np.asarray(light_pos, dtype=float), np.ones(3))],
    )


def test_lambert_cosine_falloff():
    scene = _shading_scene(light_pos=(0, 10, 0))
    inter = SceneIntersector(scene.objects)
    # Shade two floor points: one directly below the light, one far away.
    pts = np.array([[0.0, 0.0, 0.0], [10.0, 0.0, 0.0]])
    normals = np.tile([0.0, 1.0, 0.0], (2, 1))
    views = np.tile([0.0, -1.0, 0.0], (2, 1))
    out = shade_local(scene, inter, pts, normals, views, np.zeros(2, dtype=int))
    # cos(theta) = 1 under the light; 10/sqrt(200) at the far point.
    assert out[0, 0] == pytest.approx(1.0, abs=1e-9)
    assert out[1, 0] == pytest.approx(10.0 / np.sqrt(200.0), abs=1e-6)
    assert out[0, 0] > out[1, 0] > 0


def test_ambient_only_when_light_below_horizon():
    scene = _shading_scene(light_pos=(0, -10, 0))
    scene.objects[0].material = Material(
        pigment=scene.objects[0].material.pigment,
        finish=Finish(ambient=0.3, diffuse=1.0, specular=0.0),
    )
    inter = SceneIntersector(scene.objects)
    out = shade_local(
        scene,
        inter,
        np.array([[0.0, 0.0, 0.0]]),
        np.array([[0.0, 1.0, 0.0]]),
        np.array([[0.0, -1.0, 0.0]]),
        np.zeros(1, dtype=int),
    )
    np.testing.assert_allclose(out[0], [0.3, 0.3, 0.3], atol=1e-12)


def test_specular_highlight_along_mirror_direction():
    fin = Finish(ambient=0.0, diffuse=0.0, specular=1.0, phong_size=50.0)
    scene = _shading_scene(light_pos=(0, 10, 0), finish=fin)
    inter = SceneIntersector(scene.objects)
    pts = np.array([[0.0, 0.0, 0.0]])
    normals = np.array([[0.0, 1.0, 0.0]])
    # View ray coming straight down: reflection goes straight up at the light.
    views_aligned = np.array([[0.0, -1.0, 0.0]])
    out_aligned = shade_local(scene, inter, pts, normals, views_aligned, np.zeros(1, dtype=int))
    # Grazing view: reflection points away from the light.
    views_grazing = np.array([[1.0, -0.02, 0.0]])
    views_grazing /= np.linalg.norm(views_grazing)
    out_grazing = shade_local(scene, inter, pts, normals, views_grazing, np.zeros(1, dtype=int))
    assert out_aligned[0, 0] == pytest.approx(1.0, abs=1e-9)
    assert out_grazing[0, 0] < 0.1


def test_shadowed_point_gets_no_direct_light():
    scene = _shading_scene(light_pos=(0, 10, 0))
    blocker = Sphere.at((0, 5, 0), 1.0, material=Material.matte((1, 1, 1)), name="blocker")
    scene.add(blocker)
    inter = SceneIntersector(scene.objects)
    out = shade_local(
        scene,
        inter,
        np.array([[0.0, 0.0, 0.0]]),
        np.array([[0.0, 1.0, 0.0]]),
        np.array([[0.0, -1.0, 0.0]]),
        np.zeros(1, dtype=int),
    )
    np.testing.assert_allclose(out[0], 0.0, atol=1e-12)


def test_shadow_hook_called_per_light():
    scene = _shading_scene()
    scene.add_light(PointLight(np.array([5.0, 10.0, 0.0]), np.ones(3)))
    inter = SceneIntersector(scene.objects)
    calls = []
    shade_local(
        scene,
        inter,
        np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]),
        np.tile([0.0, 1.0, 0.0], (2, 1)),
        np.tile([0.0, -1.0, 0.0], (2, 1)),
        np.zeros(2, dtype=int),
        shadow_hook=lambda o, d, dist, mask: calls.append(o.shape[0]),
    )
    assert calls == [2, 2]


def test_missing_material_raises():
    s = Sphere.at((0, 0, 0), 1.0)  # no material
    scene = _shading_scene()
    scene.objects[0] = s
    inter = SceneIntersector(scene.objects)
    with pytest.raises(ValueError):
        shade_local(
            scene,
            inter,
            np.zeros((1, 3)),
            np.array([[0.0, 1.0, 0.0]]),
            np.array([[0.0, -1.0, 0.0]]),
            np.zeros(1, dtype=int),
        )
